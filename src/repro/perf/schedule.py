"""Concurrent execution model with inter-stage dependencies (Eq. 8-9).

Stages run concurrently on their assigned compute units, but a sub-layer
``l^j_i`` may only start once all of its required inputs are local: its own
previous sub-layer output plus the previous-layer features of every earlier
stage whose indicator bit is set, each of which incurs a shared-memory
transfer ``u_{k->i}``.  The cumulative latency recursion of Eq. 8,

    T^j_i = tau^j_i + max( T^{j-1}_i,
                           max_{k<i, I_k=1} ( T^{j-1}_k + u^{j-1}_{k->i} ) ),

is evaluated layer by layer; the latency of a stage is the cumulative latency
of its last layer plus its exit head (Eq. 9), and the stall time (the waiting
visible in Fig. 3) is reported separately for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import MappingError
from ..nn.multiexit import DynamicNetwork
from ..soc.compute_unit import ComputeUnit
from ..soc.interconnect import Interconnect
from .layer_cost import CostModel, LayerWorkload

__all__ = ["StageSchedule", "ScheduleResult", "simulate_schedule"]


@dataclass(frozen=True)
class StageSchedule:
    """Timing breakdown of one stage under the concurrent execution model."""

    stage_index: int
    unit_name: str
    scale: float
    sublayer_latencies_ms: Tuple[float, ...]
    cumulative_latencies_ms: Tuple[float, ...]
    exit_latency_ms: float
    transfer_latency_ms: float
    stall_ms: float

    @property
    def total_latency_ms(self) -> float:
        """Stage completion time ``T_{S_i}`` (Eq. 9), including the exit head."""
        return self.cumulative_latencies_ms[-1] + self.exit_latency_ms

    @property
    def busy_latency_ms(self) -> float:
        """Time the compute unit is actually executing (no stalls, no waits)."""
        return float(sum(self.sublayer_latencies_ms)) + self.exit_latency_ms


@dataclass(frozen=True)
class ScheduleResult:
    """Schedules of all stages plus the derived makespan."""

    stages: Tuple[StageSchedule, ...]

    @property
    def makespan_ms(self) -> float:
        """Latency of the whole concurrent execution (Eq. 13)."""
        return max(stage.total_latency_ms for stage in self.stages)

    def stage(self, index: int) -> StageSchedule:
        """Schedule of stage ``index``."""
        return self.stages[index]


def simulate_schedule(
    dynamic_network: DynamicNetwork,
    units: Sequence[ComputeUnit],
    scales: Sequence[float],
    cost_model: CostModel,
    interconnect: Interconnect,
) -> ScheduleResult:
    """Evaluate Eq. 8-9 for a dynamic network mapped onto ``units``.

    Parameters
    ----------
    dynamic_network:
        The partitioned multi-exit network.
    units:
        Compute unit hosting each stage (stage order); must be distinct per
        the mapping constraint of Eq. 7.
    scales:
        DVFS scaling factor ``theta`` chosen for each stage's unit.
    cost_model:
        Per-layer latency oracle or surrogate.
    interconnect:
        Shared-memory transfer model providing the ``u_{k->i}`` terms.
    """
    num_stages = dynamic_network.num_stages
    if len(units) != num_stages or len(scales) != num_stages:
        raise MappingError(
            f"expected {num_stages} units and scales, got {len(units)} and {len(scales)}"
        )
    names = [unit.name for unit in units]
    if len(set(names)) != len(names):
        raise MappingError(f"stages must map to distinct compute units, got {names}")

    num_layers = dynamic_network.num_layers
    indicator = dynamic_network.scheme.indicator
    scheme = dynamic_network.scheme

    # Per-stage, per-layer raw latencies tau^j_i.
    taus = np.zeros((num_stages, num_layers))
    for stage in dynamic_network.stages:
        for sub in stage.sublayers:
            workload = LayerWorkload.from_sublayer(sub)
            taus[stage.index, sub.layer_index] = cost_model.latency_ms(
                workload, units[stage.index], scales[stage.index]
            )

    # Transfer latency of stage k's layer-j output when imported by a later
    # stage (Eq. 8's u term).  All stages live on different CUs, so a reused
    # feature always crosses the shared memory.
    transfer = np.zeros((num_stages, num_layers))
    for stage_index in range(num_stages):
        for layer_index, layer in enumerate(scheme.backbone):
            feature_bytes = layer.output_bytes(scheme.stage_channels(stage_index, layer_index))
            transfer[stage_index, layer_index] = interconnect.transfer_latency_ms(feature_bytes)

    cumulative = np.zeros((num_stages, num_layers))
    stalls = np.zeros(num_stages)
    transfer_totals = np.zeros(num_stages)
    for layer_index in range(num_layers):
        for stage_index in range(num_stages):
            own_ready = cumulative[stage_index, layer_index - 1] if layer_index > 0 else 0.0
            dependency_ready = own_ready
            if layer_index > 0:
                for k in range(stage_index):
                    if indicator.reused(k, layer_index - 1):
                        ready = cumulative[k, layer_index - 1] + transfer[k, layer_index - 1]
                        transfer_totals[stage_index] += transfer[k, layer_index - 1]
                        dependency_ready = max(dependency_ready, ready)
            stalls[stage_index] += max(0.0, dependency_ready - own_ready)
            cumulative[stage_index, layer_index] = (
                taus[stage_index, layer_index] + dependency_ready
            )

    schedules = []
    for stage in dynamic_network.stages:
        exit_workload = LayerWorkload.from_layer(stage.exit_head)
        exit_latency = cost_model.latency_ms(
            exit_workload, units[stage.index], scales[stage.index]
        )
        schedules.append(
            StageSchedule(
                stage_index=stage.index,
                unit_name=units[stage.index].name,
                scale=float(scales[stage.index]),
                sublayer_latencies_ms=tuple(taus[stage.index].tolist()),
                cumulative_latencies_ms=tuple(cumulative[stage.index].tolist()),
                exit_latency_ms=float(exit_latency),
                transfer_latency_ms=float(transfer_totals[stage.index]),
                stall_ms=float(stalls[stage.index]),
            )
        )
    return ScheduleResult(stages=tuple(schedules))
