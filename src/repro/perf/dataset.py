"""Benchmark-dataset generation for surrogate training (Sect. V-E).

The paper builds a dataset of layer-wise latency/energy measurements across
layer specifications, compute units and DVFS settings using TensorRT, then
fits an XGBoost predictor on it.  This module plays the measurement
campaign's role: it samples synthetic layer configurations spanning the
ranges that occur in CIFAR-scale CNNs and ViTs, pairs each with a randomly
chosen compute unit and DVFS operating point, and records latency/energy from
the (noisy) analytical oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..nn.layers import AttentionLayer, Conv2dLayer, FeedForwardLayer, LinearLayer
from ..soc.compute_unit import ComputeUnit
from ..soc.platform import Platform
from ..utils import as_rng
from .layer_cost import CostModel, LayerWorkload, NoisyCostModel

__all__ = [
    "BenchmarkDataset",
    "generate_benchmark_dataset",
    "encode_features",
    "encode_mapping_features",
]

#: Names of the hardware/DVFS features appended to the workload features.
HARDWARE_FEATURE_NAMES = (
    "peak_gflops",
    "memory_bandwidth_gbs",
    "launch_overhead_ms",
    "max_power_w",
    "dvfs_scale",
)


def encode_features(workload: LayerWorkload, unit: ComputeUnit, scale: float) -> np.ndarray:
    """Full feature vector for one (layer, compute unit, DVFS) combination."""
    hardware = np.array(
        [
            unit.peak_gflops,
            unit.memory_bandwidth_gbs,
            unit.launch_overhead_ms,
            unit.power.max_power_w,
            scale,
        ],
        dtype=float,
    )
    return np.concatenate([workload.features(), hardware])


def encode_mapping_features(network, config, platform: Platform) -> np.ndarray:
    """Feature vector for a whole mapping configuration (for in-loop surrogates).

    Unlike :func:`encode_features`, which describes one layer slice on one
    unit, this describes a full :class:`~repro.search.space.MappingConfig`:
    per stage, the structural workload (FLOPs, parameters, reused input
    bytes, cumulative width, mean partition share) joined with the assigned
    unit's hardware characteristics and DVFS scale, plus the global reuse
    fraction and shared-memory footprint.  Everything is derived from the
    partition scheme and platform tables — no cost model is consulted — so
    featurisation is cheap enough to run on every surrogate candidate.
    """
    from ..nn.partition import PartitionScheme

    scheme = PartitionScheme(
        network=network, partition=config.partition, indicator=config.indicator
    )
    values: List[float] = []
    last_layer = scheme.num_layers - 1
    for stage in range(scheme.num_stages):
        unit = platform.unit(config.unit_names[stage])
        scale = unit.scale_for_point(config.dvfs_indices[stage])
        reused_bytes = float(
            sum(scheme.reused_input_bytes(stage, layer) for layer in range(scheme.num_layers))
        )
        values.extend(
            [
                scheme.stage_flops(stage),
                scheme.stage_params(stage),
                reused_bytes,
                scheme.cumulative_width_fraction(stage, last_layer),
                float(config.partition.values[stage].mean()),
                unit.peak_gflops,
                unit.memory_bandwidth_gbs,
                unit.launch_overhead_ms,
                unit.power.max_power_w,
                scale,
            ]
        )
    values.append(scheme.reuse_fraction())
    values.append(float(scheme.stored_feature_bytes()))
    return np.asarray(values, dtype=float)


@dataclass(frozen=True)
class BenchmarkDataset:
    """A table of (features, latency, energy) samples for surrogate training."""

    features: np.ndarray
    latencies_ms: np.ndarray
    energies_mj: np.ndarray

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=float)
        latencies = np.asarray(self.latencies_ms, dtype=float)
        energies = np.asarray(self.energies_mj, dtype=float)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ConfigurationError("features must be a non-empty 2-D array")
        if latencies.shape != (features.shape[0],) or energies.shape != (features.shape[0],):
            raise ConfigurationError("latencies and energies must be 1-D and match features rows")
        if np.any(latencies <= 0) or np.any(energies <= 0):
            raise ConfigurationError("latencies and energies must be strictly positive")
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "latencies_ms", latencies)
        object.__setattr__(self, "energies_mj", energies)

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def split(self, train_fraction: float = 0.8, seed: int = 0) -> Tuple["BenchmarkDataset", "BenchmarkDataset"]:
        """Random train/test split preserving row alignment."""
        if not 0 < train_fraction < 1:
            raise ConfigurationError(f"train_fraction must lie in (0, 1), got {train_fraction}")
        rng = as_rng(seed)
        order = rng.permutation(len(self))
        cut = max(1, int(round(train_fraction * len(self))))
        cut = min(cut, len(self) - 1)
        train_rows, test_rows = order[:cut], order[cut:]
        return (
            BenchmarkDataset(
                self.features[train_rows],
                self.latencies_ms[train_rows],
                self.energies_mj[train_rows],
            ),
            BenchmarkDataset(
                self.features[test_rows],
                self.latencies_ms[test_rows],
                self.energies_mj[test_rows],
            ),
        )


def _sample_workload(rng: np.random.Generator) -> LayerWorkload:
    """Draw one synthetic layer configuration from CIFAR-scale ranges."""
    kind = rng.choice(["conv2d", "attention", "feedforward", "linear"])
    if kind == "conv2d":
        in_channels = int(rng.choice([3, 16, 32, 64, 96, 128, 192, 256, 384, 512]))
        out_channels = int(rng.choice([16, 32, 64, 96, 128, 192, 256, 384, 512]))
        spatial = int(rng.choice([4, 8, 16, 32]))
        kernel = int(rng.choice([1, 2, 3]))
        layer = Conv2dLayer(
            name="sample",
            width=out_channels,
            in_width=in_channels,
            kernel_size=kernel,
            stride=1,
            in_spatial=(spatial, spatial),
            out_spatial=(spatial, spatial),
        )
    elif kind == "attention":
        num_heads = int(rng.choice([2, 3, 4, 6, 8, 12]))
        width = num_heads * 32
        tokens = int(rng.choice([16, 64, 256]))
        layer = AttentionLayer(
            name="sample", width=width, in_width=width, tokens=tokens, num_heads=num_heads
        )
    elif kind == "feedforward":
        width = int(rng.choice([96, 192, 256, 384, 512]))
        tokens = int(rng.choice([16, 64, 256]))
        layer = FeedForwardLayer(
            name="sample", width=width, in_width=width, tokens=tokens, expansion=4.0
        )
    else:
        in_features = int(rng.choice([64, 128, 256, 384, 512, 1024]))
        out_features = int(rng.choice([10, 100, 256, 512, 1024]))
        layer = LinearLayer(name="sample", width=out_features, in_width=in_features, tokens=1)
    # Random partial slices widen the coverage of partitioned sub-layers.
    granularity = layer.partition_granularity
    max_granules = layer.width // granularity
    out_units = int(rng.integers(1, max_granules + 1)) * granularity
    in_units = int(rng.integers(1, layer.in_width + 1))
    return LayerWorkload.from_layer(layer, in_units=in_units, out_units=out_units)


def generate_benchmark_dataset(
    platform: Platform,
    num_samples: int = 2000,
    noise_std: float = 0.05,
    seed: int | np.random.Generator | None = 0,
    cost_model: CostModel | None = None,
) -> BenchmarkDataset:
    """Generate a surrogate-training dataset for ``platform``.

    Parameters
    ----------
    platform:
        The MPSoC whose compute units and DVFS tables to sample.
    num_samples:
        Number of (layer, unit, DVFS) rows to generate.
    noise_std:
        Log-normal measurement-noise standard deviation applied to the oracle.
    seed:
        Random seed controlling both sampling and noise.
    cost_model:
        Ground-truth oracle; defaults to a noisy analytical model.
    """
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
    rng = as_rng(seed)
    oracle = cost_model if cost_model is not None else NoisyCostModel(noise_std=noise_std, seed=rng)
    rows: List[np.ndarray] = []
    latencies: List[float] = []
    energies: List[float] = []
    for _ in range(num_samples):
        workload = _sample_workload(rng)
        unit = platform.compute_units[int(rng.integers(0, platform.num_units))]
        dvfs_index = int(rng.integers(0, unit.num_dvfs_points()))
        scale = unit.scale_for_point(dvfs_index)
        rows.append(encode_features(workload, unit, scale))
        latencies.append(oracle.latency_ms(workload, unit, scale))
        energies.append(oracle.energy_mj(workload, unit, scale))
    return BenchmarkDataset(
        features=np.vstack(rows),
        latencies_ms=np.array(latencies),
        energies_mj=np.array(energies),
    )
