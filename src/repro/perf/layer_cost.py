"""Layer-level latency and energy cost models.

The paper measures layer latencies and energies on the board through TensorRT
and uses those measurements both directly and to train an XGBoost surrogate
(Sect. V-E).  In this reproduction the ground truth is an analytical model --
a roofline (compute vs. memory bound) term plus a fixed per-invocation
overhead -- evaluated on a compact :class:`LayerWorkload` descriptor.  The
same descriptor doubles as the feature vector of the learned surrogate in
:mod:`repro.perf.predictor`, so the oracle and the surrogate are
interchangeable behind the :class:`CostModel` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from ..nn.layers import BYTES_PER_ELEMENT, Layer
from ..nn.multiexit import SubLayer
from ..soc.compute_unit import ComputeUnit
from ..utils import as_rng, check_non_negative

__all__ = ["LayerWorkload", "CostModel", "AnalyticalCostModel", "NoisyCostModel"]

#: Order of the numerical features produced by :meth:`LayerWorkload.features`.
WORKLOAD_FEATURE_NAMES = (
    "flops",
    "input_bytes",
    "output_bytes",
    "weight_bytes",
    "is_conv2d",
    "is_attention",
    "is_feedforward",
    "is_linear",
)


@dataclass(frozen=True)
class LayerWorkload:
    """Hardware-relevant summary of one layer slice.

    The workload is what the cost models consume; it deliberately contains no
    reference to the originating network so the surrogate can be trained on
    synthetic layer configurations that never appear in any model.
    """

    kind: str
    flops: float
    input_bytes: float
    output_bytes: float
    weight_bytes: float

    def __post_init__(self) -> None:
        check_non_negative(self.flops, "flops")
        check_non_negative(self.input_bytes, "input_bytes")
        check_non_negative(self.output_bytes, "output_bytes")
        check_non_negative(self.weight_bytes, "weight_bytes")

    @property
    def total_bytes(self) -> float:
        """All bytes that move for one invocation (activations + weights)."""
        return self.input_bytes + self.output_bytes + self.weight_bytes

    def features(self) -> np.ndarray:
        """Numeric feature vector used by the learned surrogate."""
        return np.array(
            [
                self.flops,
                self.input_bytes,
                self.output_bytes,
                self.weight_bytes,
                1.0 if self.kind == "conv2d" else 0.0,
                1.0 if self.kind == "attention" else 0.0,
                1.0 if self.kind == "feedforward" else 0.0,
                1.0 if self.kind == "linear" else 0.0,
            ],
            dtype=float,
        )

    @classmethod
    def from_layer(
        cls, layer: Layer, in_units: int | None = None, out_units: int | None = None
    ) -> "LayerWorkload":
        """Build the workload of a (possibly partitioned) layer slice."""
        in_u, out_u = layer.resolve_units(in_units, out_units)
        return cls(
            kind=layer.kind,
            flops=layer.flops(in_units=in_u, out_units=out_u),
            input_bytes=float(layer.input_bytes(in_u)),
            output_bytes=float(layer.output_bytes(out_u)),
            weight_bytes=float(layer.params(in_units=in_u, out_units=out_u)) * BYTES_PER_ELEMENT,
        )

    @classmethod
    def from_sublayer(cls, sublayer: SubLayer) -> "LayerWorkload":
        """Build the workload of a stage's sub-layer ``l^j_i``."""
        return cls.from_layer(sublayer.base, sublayer.in_units, sublayer.out_units)


@runtime_checkable
class CostModel(Protocol):
    """Anything that can predict per-layer latency and energy on a CU."""

    def latency_ms(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        """Latency in milliseconds of ``workload`` on ``unit`` at DVFS ``scale``."""
        ...

    def energy_mj(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        """Energy in millijoules of ``workload`` on ``unit`` at DVFS ``scale``."""
        ...


class AnalyticalCostModel:
    """Roofline-with-overhead oracle standing in for board measurements.

    Latency is the per-invocation launch overhead plus the maximum of the
    compute time (FLOPs over sustained throughput, derated by the DVFS scale)
    and the memory time (bytes moved over effective bandwidth).  Energy is
    latency times the unit's power at the chosen DVFS point (Eq. 11).
    """

    def latency_ms(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        compute_ms = workload.flops / (unit.effective_gflops(workload.kind, scale) * 1e9) * 1e3
        memory_ms = workload.total_bytes / (unit.effective_bandwidth_gbs(scale) * 1e9) * 1e3
        return unit.launch_overhead_ms + max(compute_ms, memory_ms)

    def energy_mj(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        return self.latency_ms(workload, unit, scale) * unit.power_w(scale)


class NoisyCostModel:
    """Wrap a cost model with multiplicative log-normal measurement noise.

    Board measurements are noisy (scheduling jitter, thermal state); the
    surrogate-training dataset is generated through this wrapper so the
    learned predictor has to generalise rather than memorise, as it would on
    the real measurement campaign.
    """

    def __init__(
        self,
        base: CostModel | None = None,
        noise_std: float = 0.05,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if noise_std < 0:
            raise ConfigurationError(f"noise_std must be >= 0, got {noise_std}")
        self._base = base if base is not None else AnalyticalCostModel()
        self._noise_std = noise_std
        self._rng = as_rng(seed)

    def _noise(self) -> float:
        if self._noise_std == 0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self._noise_std))

    def latency_ms(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        return self._base.latency_ms(workload, unit, scale) * self._noise()

    def energy_mj(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        return self._base.energy_mj(workload, unit, scale) * self._noise()
