"""Per-stage and overall hardware characterisation (Eq. 11-14).

:class:`MappingEvaluator` binds a platform and a per-layer cost model (oracle
or learned surrogate) and turns a dynamic network plus a mapping/DVFS choice
into a :class:`HardwareProfile`:

* per-stage latency ``T_{S_i}`` from the concurrent schedule of Eq. 8-9,
* per-stage energy ``E_{S_i}`` as the sum of its sub-layer energies
  (Eq. 11-12) plus the interconnect energy of imported features,
* the overall latency ``max_i T_{S_i}`` (Eq. 13) and the cumulative energy
  ``E_{S_{1:i}}`` of instantiating the first ``i`` stages (Eq. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import MappingError
from ..nn.multiexit import DynamicNetwork
from ..soc.platform import Platform
from .layer_cost import AnalyticalCostModel, CostModel, LayerWorkload
from .schedule import ScheduleResult, simulate_schedule

__all__ = ["StagePerformance", "HardwareProfile", "MappingEvaluator"]


@dataclass(frozen=True)
class StagePerformance:
    """Latency/energy characterisation of one stage on its compute unit."""

    stage_index: int
    unit_name: str
    dvfs_scale: float
    latency_ms: float
    busy_ms: float
    stall_ms: float
    transfer_ms: float
    compute_energy_mj: float
    transfer_energy_mj: float

    @property
    def energy_mj(self) -> float:
        """Total stage energy ``E_{S_i}`` (compute plus data movement)."""
        return self.compute_energy_mj + self.transfer_energy_mj


@dataclass(frozen=True)
class HardwareProfile:
    """Full hardware characterisation of one mapping configuration."""

    stages: Tuple[StagePerformance, ...]
    stored_feature_bytes: int

    @property
    def num_stages(self) -> int:
        """Number of stages ``M``."""
        return len(self.stages)

    @property
    def latency_ms(self) -> float:
        """Overall latency under concurrent execution (Eq. 13)."""
        return max(stage.latency_ms for stage in self.stages)

    @property
    def total_energy_mj(self) -> float:
        """Energy when every stage is instantiated (Eq. 14 with M' = M)."""
        return sum(stage.energy_mj for stage in self.stages)

    def stage_latency_ms(self, stage: int) -> float:
        """Latency ``T_{S_i}`` of stage ``stage``."""
        return self.stages[stage].latency_ms

    def cumulative_latency_ms(self, stage: int) -> float:
        """Latency when the inference terminates at ``stage``.

        Under concurrent execution the elapsed time is the maximum completion
        time among the instantiated stages ``S_1 .. S_i``.
        """
        self._check_stage(stage)
        return max(self.stages[k].latency_ms for k in range(stage + 1))

    def cumulative_energy_mj(self, stage: int) -> float:
        """Energy ``E_{S_{1:i}}`` of instantiating stages up to ``stage`` (Eq. 14)."""
        self._check_stage(stage)
        return sum(self.stages[k].energy_mj for k in range(stage + 1))

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.num_stages:
            raise MappingError(f"stage index {stage} out of range [0, {self.num_stages})")


class MappingEvaluator:
    """Evaluate mapping configurations on a platform with a given cost model."""

    def __init__(self, platform: Platform, cost_model: Optional[CostModel] = None) -> None:
        self.platform = platform
        self.cost_model = cost_model if cost_model is not None else AnalyticalCostModel()

    def profile(
        self,
        dynamic_network: DynamicNetwork,
        unit_names: Sequence[str],
        dvfs_indices: Sequence[int],
    ) -> HardwareProfile:
        """Characterise ``dynamic_network`` under a mapping and DVFS choice.

        Parameters
        ----------
        dynamic_network:
            The partitioned multi-exit network to deploy.
        unit_names:
            Compute unit assigned to each stage, in stage order.  Units must
            be distinct (Eq. 7) and exist on the platform.
        dvfs_indices:
            Index into each assigned unit's DVFS table, in stage order.
        """
        num_stages = dynamic_network.num_stages
        if len(unit_names) != num_stages or len(dvfs_indices) != num_stages:
            raise MappingError(
                f"expected {num_stages} unit names and DVFS indices, got "
                f"{len(unit_names)} and {len(dvfs_indices)}"
            )
        units = [self.platform.unit(name) for name in unit_names]
        scales = [
            unit.scale_for_point(int(index)) for unit, index in zip(units, dvfs_indices)
        ]
        schedule = simulate_schedule(
            dynamic_network,
            units=units,
            scales=scales,
            cost_model=self.cost_model,
            interconnect=self.platform.interconnect,
        )
        return self._profile_from_schedule(dynamic_network, schedule, unit_names, scales)

    # -- internals ---------------------------------------------------------------
    def _profile_from_schedule(
        self,
        dynamic_network: DynamicNetwork,
        schedule: ScheduleResult,
        unit_names: Sequence[str],
        scales: Sequence[float],
    ) -> HardwareProfile:
        interconnect = self.platform.interconnect
        performances = []
        for stage, stage_schedule in zip(dynamic_network.stages, schedule.stages):
            unit = self.platform.unit(unit_names[stage.index])
            scale = scales[stage.index]
            compute_energy = 0.0
            for sub in stage.sublayers:
                workload = LayerWorkload.from_sublayer(sub)
                compute_energy += self.cost_model.energy_mj(workload, unit, scale)
            exit_workload = LayerWorkload.from_layer(stage.exit_head)
            compute_energy += self.cost_model.energy_mj(exit_workload, unit, scale)
            transfer_energy = interconnect.transfer_energy_mj(stage.imported_bytes())
            performances.append(
                StagePerformance(
                    stage_index=stage.index,
                    unit_name=unit.name,
                    dvfs_scale=float(scale),
                    latency_ms=stage_schedule.total_latency_ms,
                    busy_ms=stage_schedule.busy_latency_ms,
                    stall_ms=stage_schedule.stall_ms,
                    transfer_ms=stage_schedule.transfer_latency_ms,
                    compute_energy_mj=compute_energy,
                    transfer_energy_mj=transfer_energy,
                )
            )
        return HardwareProfile(
            stages=tuple(performances),
            stored_feature_bytes=dynamic_network.stored_feature_bytes(),
        )
