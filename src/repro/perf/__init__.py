"""Hardware performance characterisation (Sect. III-B and V-E).

This subpackage provides everything between "a layer slice mapped to a CU at
a DVFS point" and "how long it takes and how much energy it burns":

* :mod:`repro.perf.layer_cost` -- the analytical (roofline + overhead) cost
  oracle playing the role of the paper's TensorRT measurement campaign,
* :mod:`repro.perf.gbdt` -- from-scratch gradient-boosted regression trees,
  the reproduction's stand-in for XGBoost,
* :mod:`repro.perf.dataset` -- benchmark-dataset generation for surrogate
  training,
* :mod:`repro.perf.predictor` -- the latency/energy surrogate predictor used
  inside the search loop,
* :mod:`repro.perf.schedule` -- the concurrent execution model of Eq. 8-9
  (inter-stage dependencies, transfer overheads, stalls),
* :mod:`repro.perf.evaluator` -- per-stage and overall latency/energy
  characterisation (Eq. 11-14).
"""

from .layer_cost import AnalyticalCostModel, CostModel, LayerWorkload, NoisyCostModel
from .gbdt import GradientBoostedTrees
from .dataset import BenchmarkDataset, generate_benchmark_dataset
from .predictor import SurrogateCostModel, train_surrogate
from .schedule import ScheduleResult, StageSchedule, simulate_schedule
from .evaluator import HardwareProfile, MappingEvaluator, StagePerformance

__all__ = [
    "LayerWorkload",
    "CostModel",
    "AnalyticalCostModel",
    "NoisyCostModel",
    "GradientBoostedTrees",
    "BenchmarkDataset",
    "generate_benchmark_dataset",
    "SurrogateCostModel",
    "train_surrogate",
    "StageSchedule",
    "ScheduleResult",
    "simulate_schedule",
    "StagePerformance",
    "HardwareProfile",
    "MappingEvaluator",
]
