"""Learned latency/energy surrogate used inside the search loop (Sect. V-E).

The evolutionary search evaluates thousands of candidate mappings; the paper
avoids measuring each one on the board by training an XGBoost predictor on a
layer-wise benchmark dataset and querying it during the search.  This module
provides the equivalent :class:`SurrogateCostModel`: two gradient-boosted
tree ensembles (one for latency, one for energy) over the combined
layer/hardware/DVFS feature vector, trained in log space so the wide dynamic
range of energies is fitted multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import PredictionError
from ..soc.compute_unit import ComputeUnit
from ..soc.platform import Platform
from .dataset import BenchmarkDataset, encode_features, generate_benchmark_dataset
from .gbdt import GradientBoostedTrees
from .layer_cost import LayerWorkload

__all__ = ["SurrogateCostModel", "train_surrogate"]

#: Floor applied to surrogate outputs so downstream models never see zero or
#: negative latencies/energies caused by extrapolation.
_PREDICTION_FLOOR = 1e-6


@dataclass
class SurrogateCostModel:
    """A trained latency/energy predictor implementing the CostModel protocol."""

    latency_model: GradientBoostedTrees
    energy_model: GradientBoostedTrees

    def __post_init__(self) -> None:
        if not self.latency_model.is_fitted or not self.energy_model.is_fitted:
            raise PredictionError("SurrogateCostModel requires fitted latency and energy models")

    def latency_ms(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        """Predicted latency in milliseconds."""
        features = encode_features(workload, unit, scale)[None, :]
        value = float(np.expm1(self.latency_model.predict(features)[0]))
        return max(_PREDICTION_FLOOR, value)

    def energy_mj(self, workload: LayerWorkload, unit: ComputeUnit, scale: float) -> float:
        """Predicted energy in millijoules."""
        features = encode_features(workload, unit, scale)[None, :]
        value = float(np.expm1(self.energy_model.predict(features)[0]))
        return max(_PREDICTION_FLOOR, value)

    def evaluate(self, dataset: BenchmarkDataset) -> dict:
        """Prediction quality on a held-out dataset.

        Returns R^2 (in log space, as trained) and the mean absolute
        percentage error in linear space for both targets.
        """
        latency_log = np.log1p(dataset.latencies_ms)
        energy_log = np.log1p(dataset.energies_mj)
        latency_pred = np.expm1(self.latency_model.predict(dataset.features))
        energy_pred = np.expm1(self.energy_model.predict(dataset.features))
        return {
            "latency_r2": self.latency_model.score(dataset.features, latency_log),
            "energy_r2": self.energy_model.score(dataset.features, energy_log),
            "latency_mape": float(
                np.mean(np.abs(latency_pred - dataset.latencies_ms) / dataset.latencies_ms)
            ),
            "energy_mape": float(
                np.mean(np.abs(energy_pred - dataset.energies_mj) / dataset.energies_mj)
            ),
        }


def train_surrogate(
    platform: Platform,
    dataset: Optional[BenchmarkDataset] = None,
    num_samples: int = 2000,
    n_estimators: int = 120,
    max_depth: int = 5,
    learning_rate: float = 0.1,
    seed: int = 0,
) -> SurrogateCostModel:
    """Train a :class:`SurrogateCostModel` for ``platform``.

    Parameters
    ----------
    platform:
        Target MPSoC; used to generate the benchmark dataset when ``dataset``
        is not supplied.
    dataset:
        Pre-generated benchmark dataset (e.g. with a specific noise level).
    num_samples, n_estimators, max_depth, learning_rate, seed:
        Dataset size and GBDT hyper-parameters.
    """
    if dataset is None:
        dataset = generate_benchmark_dataset(platform, num_samples=num_samples, seed=seed)
    latency_model = GradientBoostedTrees(
        n_estimators=n_estimators,
        learning_rate=learning_rate,
        max_depth=max_depth,
        seed=seed,
    ).fit(dataset.features, np.log1p(dataset.latencies_ms))
    energy_model = GradientBoostedTrees(
        n_estimators=n_estimators,
        learning_rate=learning_rate,
        max_depth=max_depth,
        seed=seed + 1,
    ).fit(dataset.features, np.log1p(dataset.energies_mj))
    return SurrogateCostModel(latency_model=latency_model, energy_model=energy_model)
