"""Gradient-boosted regression trees, implemented from scratch with numpy.

The paper trains an XGBoost surrogate on a benchmarked dataset of layer
specifications, deployment hardware and DVFS settings (Sect. V-E).  Since no
third-party boosting library is available offline, this module implements the
same model class: an ensemble of shallow CART regression trees fitted to the
residuals of a squared-error objective with shrinkage (learning rate) and
optional row subsampling.  The implementation favours clarity over raw speed;
the surrogate-training datasets used in this reproduction are a few thousand
rows, for which exact greedy splitting is more than fast enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import PredictionError
from ..utils import as_rng

__all__ = ["RegressionTree", "GradientBoostedTrees"]


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is ``None``)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """A CART regression tree with exact greedy splits on squared error."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 5) -> None:
        if max_depth < 1:
            raise PredictionError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise PredictionError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_TreeNode] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit the tree to ``features`` (n x d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or targets.ndim != 1 or features.shape[0] != targets.shape[0]:
            raise PredictionError("features must be (n, d) and targets (n,) with matching n")
        if features.shape[0] == 0:
            raise PredictionError("cannot fit a tree on an empty dataset")
        self._root = self._grow(features, targets, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n x d)."""
        if self._root is None:
            raise PredictionError("RegressionTree.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise PredictionError("features must be a 2-D array")
        return np.array([self._predict_row(row) for row in features], dtype=float)

    # -- internals --------------------------------------------------------------
    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(targets.mean()))
        if depth >= self.max_depth or targets.size < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _best_split(self, features: np.ndarray, targets: np.ndarray):
        best_gain = 1e-12
        best = None
        total_sum = targets.sum()
        total_count = targets.size
        parent_score = total_sum * total_sum / total_count
        for feature in range(features.shape[1]):
            order = np.argsort(features[:, feature], kind="stable")
            sorted_values = features[order, feature]
            sorted_targets = targets[order]
            cumulative = np.cumsum(sorted_targets)
            # Candidate split after position k keeps k+1 samples on the left.
            for k in range(self.min_samples_leaf - 1, total_count - self.min_samples_leaf):
                if sorted_values[k] == sorted_values[k + 1]:
                    continue
                left_count = k + 1
                right_count = total_count - left_count
                left_sum = cumulative[k]
                right_sum = total_sum - left_sum
                score = left_sum**2 / left_count + right_sum**2 / right_count
                gain = score - parent_score
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float((sorted_values[k] + sorted_values[k + 1]) / 2))
        return best

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class GradientBoostedTrees:
    """Gradient boosting of regression trees on the squared-error objective.

    Parameters mirror the common XGBoost knobs used for small tabular
    problems: number of boosting rounds, learning rate (shrinkage), tree
    depth, minimum leaf size and row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 120,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_estimators < 1:
            raise PredictionError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise PredictionError(f"learning_rate must lie in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise PredictionError(f"subsample must lie in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._rng = as_rng(seed)
        self._base_prediction = 0.0
        self._trees: List[RegressionTree] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._trees)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        """Fit the ensemble to ``features`` (n x d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or targets.ndim != 1 or features.shape[0] != targets.shape[0]:
            raise PredictionError("features must be (n, d) and targets (n,) with matching n")
        if features.shape[0] == 0:
            raise PredictionError("cannot fit GBDT on an empty dataset")
        self._trees = []
        self._base_prediction = float(targets.mean())
        predictions = np.full(targets.shape, self._base_prediction)
        n_rows = features.shape[0]
        for _ in range(self.n_estimators):
            residuals = targets - predictions
            if self.subsample < 1.0:
                sample_size = max(2 * self.min_samples_leaf, int(round(self.subsample * n_rows)))
                sample_size = min(sample_size, n_rows)
                rows = self._rng.choice(n_rows, size=sample_size, replace=False)
            else:
                rows = np.arange(n_rows)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(features[rows], residuals[rows])
            update = tree.predict(features)
            predictions = predictions + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n x d)."""
        if not self.is_fitted:
            raise PredictionError("GradientBoostedTrees.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        predictions = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            predictions = predictions + self.learning_rate * tree.predict(features)
        return predictions

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R^2) on a held-out set."""
        targets = np.asarray(targets, dtype=float)
        predictions = self.predict(features)
        residual = float(np.sum((targets - predictions) ** 2))
        total = float(np.sum((targets - targets.mean()) ** 2))
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return 1.0 - residual / total
