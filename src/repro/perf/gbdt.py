"""Gradient-boosted regression trees, implemented from scratch with numpy.

The paper trains an XGBoost surrogate on a benchmarked dataset of layer
specifications, deployment hardware and DVFS settings (Sect. V-E).  Since no
third-party boosting library is available offline, this module implements the
same model class: an ensemble of shallow CART regression trees fitted to the
residuals of a squared-error objective with shrinkage (learning rate) and
optional row subsampling.  Split search and prediction are vectorised over
numpy (an exact-greedy cumulative-sum scan per feature, and batched node
traversal over a flattened tree) so the model is fast enough to sit *inside*
the search loop as an in-the-loop surrogate, not just behind a pre-trained
cost model; the numerics are bit-identical to the original scalar loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import PredictionError
from ..utils import as_rng

__all__ = ["RegressionTree", "GradientBoostedTrees"]


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is ``None``)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """A CART regression tree with exact greedy splits on squared error."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 5) -> None:
        if max_depth < 1:
            raise PredictionError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise PredictionError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_TreeNode] = None
        self._flat: Optional[tuple] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit the tree to ``features`` (n x d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or targets.ndim != 1 or features.shape[0] != targets.shape[0]:
            raise PredictionError("features must be (n, d) and targets (n,) with matching n")
        if features.shape[0] == 0:
            raise PredictionError("cannot fit a tree on an empty dataset")
        if np.all(targets == targets[0]):
            # Constant targets admit no gainful split; short-circuit to a leaf
            # (identical output to the full search, which finds zero gain).
            self._root = _TreeNode(value=float(targets[0]))
        else:
            self._root = self._grow(features, targets, depth=0)
        self._flat = None
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n x d), batched over all rows.

        Traversal is vectorised: the fitted tree is flattened into node
        arrays once, then the whole batch is routed level by level, so the
        cost is ``O(depth)`` numpy passes instead of a Python walk per row.
        The routing comparisons are the same ``row[feature] <= threshold``
        the scalar walk performs, so results are bit-identical to
        :meth:`_predict_row`.
        """
        if self._root is None:
            raise PredictionError("RegressionTree.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise PredictionError("features must be a 2-D array")
        feature_ids, thresholds, lefts, rights, values = self._flatten()
        nodes = np.zeros(features.shape[0], dtype=np.intp)
        while True:
            node_features = feature_ids[nodes]
            internal = node_features >= 0
            if not internal.any():
                break
            rows = np.nonzero(internal)[0]
            current = nodes[rows]
            go_left = features[rows, node_features[rows]] <= thresholds[current]
            nodes[rows] = np.where(go_left, lefts[current], rights[current])
        return values[nodes].copy()

    # -- internals --------------------------------------------------------------
    def _flatten(self) -> tuple:
        """Node arrays ``(feature, threshold, left, right, value)`` of the tree.

        Leaves carry feature ``-1``.  Built lazily and cached; ``getattr``
        keeps trees pickled before this attribute existed loadable.
        """
        flat = getattr(self, "_flat", None)
        if flat is not None:
            return flat
        feature_ids: list = []
        thresholds: list = []
        lefts: list = []
        rights: list = []
        values: list = []

        def add(node: _TreeNode) -> int:
            index = len(feature_ids)
            feature_ids.append(-1 if node.is_leaf else node.feature)
            thresholds.append(node.threshold)
            lefts.append(0)
            rights.append(0)
            values.append(node.value)
            if not node.is_leaf:
                lefts[index] = add(node.left)
                rights[index] = add(node.right)
            return index

        add(self._root)
        self._flat = (
            np.asarray(feature_ids, dtype=np.intp),
            np.asarray(thresholds, dtype=float),
            np.asarray(lefts, dtype=np.intp),
            np.asarray(rights, dtype=np.intp),
            np.asarray(values, dtype=float),
        )
        return self._flat

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(targets.mean()))
        if depth >= self.max_depth or targets.size < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _best_split(self, features: np.ndarray, targets: np.ndarray):
        """Exact greedy split, scanned with numpy per feature.

        Semantics match the original per-candidate Python loop exactly: the
        candidate scores are the same IEEE-754 expressions evaluated
        elementwise, strict ``>`` against the running best keeps the
        *earliest* feature and the *earliest* split position on ties, and
        candidates between equal adjacent values are skipped.
        """
        best_gain = 1e-12
        best = None
        total_sum = targets.sum()
        total_count = targets.size
        parent_score = total_sum * total_sum / total_count
        # Candidate split after position k keeps k+1 samples on the left.
        positions = np.arange(self.min_samples_leaf - 1, total_count - self.min_samples_leaf)
        if positions.size == 0:
            return None
        left_counts = positions + 1
        right_counts = total_count - left_counts
        for feature in range(features.shape[1]):
            order = np.argsort(features[:, feature], kind="stable")
            sorted_values = features[order, feature]
            sorted_targets = targets[order]
            cumulative = np.cumsum(sorted_targets)
            valid = sorted_values[positions] != sorted_values[positions + 1]
            if not valid.any():
                continue
            left_sums = cumulative[positions]
            right_sums = total_sum - left_sums
            scores = left_sums**2 / left_counts + right_sums**2 / right_counts
            gains = np.where(valid, scores - parent_score, -np.inf)
            winner = int(np.argmax(gains))
            if gains[winner] > best_gain:
                best_gain = gains[winner]
                k = int(positions[winner])
                best = (feature, float((sorted_values[k] + sorted_values[k + 1]) / 2))
        return best

    def _predict_row(self, row: np.ndarray) -> float:
        """Scalar reference walk (kept as the benchmark baseline for
        :meth:`predict`; both must agree bit for bit)."""
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def predict_rowwise(self, features: np.ndarray) -> np.ndarray:
        """Row-by-row prediction via :meth:`_predict_row` (reference path)."""
        if self._root is None:
            raise PredictionError("RegressionTree.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise PredictionError("features must be a 2-D array")
        return np.array([self._predict_row(row) for row in features], dtype=float)


class GradientBoostedTrees:
    """Gradient boosting of regression trees on the squared-error objective.

    Parameters mirror the common XGBoost knobs used for small tabular
    problems: number of boosting rounds, learning rate (shrinkage), tree
    depth, minimum leaf size and row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 120,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_estimators < 1:
            raise PredictionError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise PredictionError(f"learning_rate must lie in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise PredictionError(f"subsample must lie in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._rng = as_rng(seed)
        self._base_prediction = 0.0
        self._trees: List[RegressionTree] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._trees)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        """Fit the ensemble to ``features`` (n x d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or targets.ndim != 1 or features.shape[0] != targets.shape[0]:
            raise PredictionError("features must be (n, d) and targets (n,) with matching n")
        if features.shape[0] == 0:
            raise PredictionError("cannot fit GBDT on an empty dataset")
        self._trees = []
        self._base_prediction = float(targets.mean())
        predictions = np.full(targets.shape, self._base_prediction)
        n_rows = features.shape[0]
        for _ in range(self.n_estimators):
            residuals = targets - predictions
            if self.subsample < 1.0:
                sample_size = max(2 * self.min_samples_leaf, int(round(self.subsample * n_rows)))
                sample_size = min(sample_size, n_rows)
                rows = self._rng.choice(n_rows, size=sample_size, replace=False)
            else:
                rows = np.arange(n_rows)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(features[rows], residuals[rows])
            update = tree.predict(features)
            predictions = predictions + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n x d)."""
        if not self.is_fitted:
            raise PredictionError("GradientBoostedTrees.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        predictions = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            predictions = predictions + self.learning_rate * tree.predict(features)
        return predictions

    def predict_rowwise(self, features: np.ndarray) -> np.ndarray:
        """Ensemble prediction through the per-row tree walk (reference path).

        Same numbers as :meth:`predict`; kept so benchmarks and tests can
        compare the vectorised traversal against the scalar walk.
        """
        if not self.is_fitted:
            raise PredictionError("GradientBoostedTrees.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        predictions = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            predictions = predictions + self.learning_rate * tree.predict_rowwise(features)
        return predictions

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R^2) on a held-out set."""
        targets = np.asarray(targets, dtype=float)
        predictions = self.predict(features)
        residual = float(np.sum((targets - predictions) ** 2))
        total = float(np.sum((targets - targets.mean()) ** 2))
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return 1.0 - residual / total
