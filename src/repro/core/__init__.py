"""Top-level Map-and-Conquer API.

:class:`~repro.core.framework.MapAndConquer` is the facade most users need:
it wires the network, the platform model, the (oracle or surrogate) cost
model, the accuracy model and the evolutionary search behind a small number
of calls -- ``search()``, ``baseline()``, ``static_baseline()`` and
``evaluate()`` -- and :mod:`repro.core.report` renders the paper-style
comparison tables from their results.
"""

from .framework import MapAndConquer
from .report import convergence_table, format_table, search_summary, table_to_string

__all__ = [
    "MapAndConquer",
    "format_table",
    "table_to_string",
    "convergence_table",
    "search_summary",
]
