"""The Map-and-Conquer facade: one object that runs the whole pipeline.

Typical usage::

    from repro.core import MapAndConquer
    from repro.nn.models import visformer
    from repro.soc import jetson_agx_xavier

    framework = MapAndConquer(visformer(), jetson_agx_xavier())
    result = framework.search(generations=30, population_size=24)
    best = framework.select_energy_oriented(result.pareto)
    gpu_only = framework.baseline("gpu")
    print(f"energy gain: {gpu_only.energy_mj / best.energy_mj:.2f}x")

The facade owns a :class:`~repro.search.evaluation.ConfigEvaluator` (so all
evaluations share one cache and one channel ranking), a
:class:`~repro.search.space.SearchSpace`, and small helpers to reproduce the
baselines and Pareto selections reported in the paper.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..errors import ConfigurationError
from ..nn.channels import ChannelRanking, rank_channels
from ..nn.graph import NetworkGraph
from ..perf.layer_cost import CostModel
from ..perf.predictor import train_surrogate
from ..search.baselines import single_unit_baseline, static_partitioned_baseline
from ..search.constraints import SearchConstraints
from ..search.evaluation import ConfigEvaluator, EvaluatedConfig
from ..search.evolutionary import EvolutionarySearch, SearchResult
from ..search.objectives import paper_objective
from ..search.pareto import pareto_front, select_energy_oriented, select_latency_oriented
from ..search.space import MappingConfig, SearchSpace
from ..soc.platform import Platform, jetson_agx_xavier

__all__ = ["MapAndConquer"]


class MapAndConquer:
    """End-to-end Map-and-Conquer framework for one network on one platform.

    Parameters
    ----------
    network:
        The pretrained network to transform and map.
    platform:
        Target MPSoC; defaults to the calibrated Jetson AGX Xavier model.
    cost_model:
        Per-layer latency/energy model.  ``None`` uses the analytical oracle;
        set ``use_surrogate=True`` to train and use a GBDT surrogate instead
        (the paper's configuration).
    use_surrogate:
        Train a surrogate predictor on a generated benchmark dataset and use
        it for all evaluations.
    surrogate_samples:
        Benchmark-dataset size when training the surrogate.
    accuracy_model:
        Coverage-to-accuracy model; ``None`` uses the calibrated default.
    num_stages:
        Number of inference stages; defaults to the platform's unit count.
    max_reuse_fraction:
        Optional cap on feature-map reuse baked into the search space (the
        75 % / 50 % scenarios).
    reorder_channels:
        Apply the Sect. V-D channel-importance reordering (default on).
    validation_samples:
        Validation-set size used for exit statistics.
    seed:
        Seed for the channel ranking and surrogate training.
    """

    def __init__(
        self,
        network: NetworkGraph,
        platform: Optional[Platform] = None,
        cost_model: Optional[CostModel] = None,
        use_surrogate: bool = False,
        surrogate_samples: int = 1500,
        accuracy_model: Optional[AccuracyModel] = None,
        num_stages: Optional[int] = None,
        max_reuse_fraction: Optional[float] = None,
        reorder_channels: bool = True,
        validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
        seed: int = 0,
    ) -> None:
        if cost_model is not None and use_surrogate:
            raise ConfigurationError("pass either cost_model or use_surrogate, not both")
        self.network = network
        self.platform = platform if platform is not None else jetson_agx_xavier()
        self.seed = int(seed)
        if use_surrogate:
            cost_model = train_surrogate(
                self.platform, num_samples=surrogate_samples, seed=self.seed
            )
        self.cost_model = cost_model
        self.ranking: ChannelRanking = rank_channels(network, seed=self.seed)
        self.evaluator = ConfigEvaluator(
            network=network,
            platform=self.platform,
            cost_model=cost_model,
            accuracy_model=accuracy_model,
            ranking=self.ranking,
            reorder_channels=reorder_channels,
            validation_samples=validation_samples,
            seed=self.seed,
        )
        self.space = SearchSpace(
            network=network,
            platform=self.platform,
            num_stages=num_stages,
            max_reuse_fraction=max_reuse_fraction,
        )

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, config: MappingConfig) -> EvaluatedConfig:
        """Evaluate one explicit configuration ``Pi``."""
        return self.evaluator.evaluate(config)

    def sample(self, seed: Optional[int] = None) -> MappingConfig:
        """Sample one random configuration from the search space."""
        return self.space.sample(self.seed if seed is None else seed)

    # -- baselines ------------------------------------------------------------------
    def baseline(self, unit_name: str, dvfs_index: Optional[int] = None) -> EvaluatedConfig:
        """GPU-only / DLA-only style single-unit baseline."""
        return single_unit_baseline(
            self.network,
            self.platform,
            unit_name,
            cost_model=self.cost_model,
            dvfs_index=dvfs_index,
            seed=self.seed,
        )

    def static_baseline(
        self, unit_names: Optional[Tuple[str, ...]] = None
    ) -> EvaluatedConfig:
        """Static width-partitioned mapping across units (no early exits)."""
        return static_partitioned_baseline(
            self.network,
            self.platform,
            cost_model=self.cost_model,
            unit_names=unit_names,
            seed=self.seed,
        )

    # -- search ---------------------------------------------------------------------
    def search(
        self,
        generations: int = 200,
        population_size: int = 60,
        constraints: Optional[SearchConstraints] = None,
        objective: Callable[[EvaluatedConfig], float] = paper_objective,
        elite_fraction: float = 0.25,
        mutation_rate: float = 0.8,
        seed: Optional[int] = None,
    ) -> SearchResult:
        """Run the evolutionary search (Fig. 5) and return its result.

        The paper's full budget is 200 generations of 60 individuals; the
        benches and examples use smaller budgets that converge on the reduced
        analytical problem in seconds.
        """
        search = EvolutionarySearch(
            space=self.space,
            evaluator=self.evaluator,
            objective=objective,
            constraints=constraints,
            population_size=population_size,
            generations=generations,
            elite_fraction=elite_fraction,
            mutation_rate=mutation_rate,
            seed=self.seed if seed is None else seed,
        )
        return search.run()

    # -- Pareto selection -------------------------------------------------------------
    def pareto(self, evaluated: Sequence[EvaluatedConfig]) -> list:
        """Non-dominated subset of ``evaluated``."""
        return pareto_front(list(evaluated))

    def select_latency_oriented(
        self, evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
    ) -> EvaluatedConfig:
        """Pick the "Ours-L" model from a (Pareto) set."""
        return select_latency_oriented(list(evaluated), max_accuracy_drop=max_accuracy_drop)

    def select_energy_oriented(
        self, evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
    ) -> EvaluatedConfig:
        """Pick the "Ours-E" model from a (Pareto) set."""
        return select_energy_oriented(list(evaluated), max_accuracy_drop=max_accuracy_drop)
