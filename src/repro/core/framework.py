"""The Map-and-Conquer facade: one object that runs the whole pipeline.

Typical usage::

    from repro.core import MapAndConquer
    from repro.nn.models import visformer
    from repro.soc import jetson_agx_xavier

    framework = MapAndConquer(visformer(), jetson_agx_xavier())
    result = framework.search(generations=30, population_size=24)
    best = framework.select_energy_oriented(result.pareto)
    gpu_only = framework.baseline("gpu")
    print(f"energy gain: {gpu_only.energy_mj / best.energy_mj:.2f}x")

The facade owns a :class:`~repro.search.evaluation.ConfigEvaluator` (so all
evaluations share one cache and one channel ranking), a
:class:`~repro.search.space.SearchSpace`, and small helpers to reproduce the
baselines and Pareto selections reported in the paper.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple

from ..dynamics.accuracy import AccuracyModel
from ..dynamics.samples import DEFAULT_VALIDATION_SAMPLES
from ..engine.backends import EvaluationBackend, ProcessPoolBackend, SerialBackend
from ..engine.cache import EvaluationCache
from ..engine.engine import SearchEngine
from ..engine.nsga import NSGA2Strategy
from ..engine.strategies import EvolutionaryStrategy, RandomStrategy, SearchStrategy
from ..engine.surrogate import (
    SurrogateAssistedStrategy,
    SurrogateEvaluationBackend,
    SurrogateObjective,
    SurrogateSettings,
)
from ..errors import ConfigurationError
from ..nn.channels import ChannelRanking, rank_channels
from ..nn.graph import NetworkGraph
from ..perf.layer_cost import CostModel
from ..perf.predictor import train_surrogate
from ..search.baselines import single_unit_baseline, static_partitioned_baseline
from ..search.constraints import SearchConstraints
from ..search.evaluation import ConfigEvaluator, EvaluatedConfig
from ..search.evolutionary import SearchResult
from ..search.objectives import ObjectiveSet, paper_objective
from ..search.pareto import (
    pareto_front,
    select_energy_oriented,
    select_latency_oriented,
    select_measured_serving,
    select_serving_oriented,
)
from ..search.space import MappingConfig, SearchSpace
from ..soc.platform import Platform, jetson_agx_xavier

__all__ = ["MapAndConquer"]

#: Strategy names accepted by :meth:`MapAndConquer.search`.
STRATEGY_NAMES = ("evolutionary", "nsga2", "random")


class MapAndConquer:
    """End-to-end Map-and-Conquer framework for one network on one platform.

    Parameters
    ----------
    network:
        The pretrained network to transform and map.
    platform:
        Target MPSoC; defaults to the calibrated Jetson AGX Xavier model.
    cost_model:
        Per-layer latency/energy model.  ``None`` uses the analytical oracle;
        set ``use_surrogate=True`` to train and use a GBDT surrogate instead
        (the paper's configuration).
    use_surrogate:
        Train a surrogate predictor on a generated benchmark dataset and use
        it for all evaluations.
    surrogate_samples:
        Benchmark-dataset size when training the surrogate.
    accuracy_model:
        Coverage-to-accuracy model; ``None`` uses the calibrated default.
    num_stages:
        Number of inference stages; defaults to the platform's unit count.
    max_reuse_fraction:
        Optional cap on feature-map reuse baked into the search space (the
        75 % / 50 % scenarios).
    reorder_channels:
        Apply the Sect. V-D channel-importance reordering (default on).
    validation_samples:
        Validation-set size used for exit statistics.
    seed:
        Seed for the channel ranking and surrogate training.
    """

    def __init__(
        self,
        network: NetworkGraph,
        platform: Optional[Platform] = None,
        cost_model: Optional[CostModel] = None,
        use_surrogate: bool = False,
        surrogate_samples: int = 1500,
        accuracy_model: Optional[AccuracyModel] = None,
        num_stages: Optional[int] = None,
        max_reuse_fraction: Optional[float] = None,
        reorder_channels: bool = True,
        validation_samples: int = DEFAULT_VALIDATION_SAMPLES,
        seed: int = 0,
    ) -> None:
        if cost_model is not None and use_surrogate:
            raise ConfigurationError("pass either cost_model or use_surrogate, not both")
        self.network = network
        self.platform = platform if platform is not None else jetson_agx_xavier()
        self.seed = int(seed)
        if use_surrogate:
            cost_model = train_surrogate(
                self.platform, num_samples=surrogate_samples, seed=self.seed
            )
        self.cost_model = cost_model
        self.ranking: ChannelRanking = rank_channels(network, seed=self.seed)
        self.evaluator = ConfigEvaluator(
            network=network,
            platform=self.platform,
            cost_model=cost_model,
            accuracy_model=accuracy_model,
            ranking=self.ranking,
            reorder_channels=reorder_channels,
            validation_samples=validation_samples,
            seed=self.seed,
        )
        self.space = SearchSpace(
            network=network,
            platform=self.platform,
            num_stages=num_stages,
            max_reuse_fraction=max_reuse_fraction,
        )
        # Default engine cache, shared by every search() on this framework so
        # repeated searches (strategy comparisons, warm restarts) hit it and
        # the cache telemetry reflects the reuse that actually happens.
        self.evaluation_cache = EvaluationCache()

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, config: MappingConfig) -> EvaluatedConfig:
        """Evaluate one explicit configuration ``Pi``."""
        return self.evaluator.evaluate(config)

    def sample(self, seed: Optional[int] = None) -> MappingConfig:
        """Sample one random configuration from the search space."""
        return self.space.sample(self.seed if seed is None else seed)

    # -- baselines ------------------------------------------------------------------
    def baseline(self, unit_name: str, dvfs_index: Optional[int] = None) -> EvaluatedConfig:
        """GPU-only / DLA-only style single-unit baseline."""
        return single_unit_baseline(
            self.network,
            self.platform,
            unit_name,
            cost_model=self.cost_model,
            dvfs_index=dvfs_index,
            seed=self.seed,
        )

    def static_baseline(
        self, unit_names: Optional[Tuple[str, ...]] = None
    ) -> EvaluatedConfig:
        """Static width-partitioned mapping across units (no early exits)."""
        return static_partitioned_baseline(
            self.network,
            self.platform,
            cost_model=self.cost_model,
            unit_names=unit_names,
            seed=self.seed,
        )

    # -- search ---------------------------------------------------------------------
    def search(
        self,
        generations: Optional[int] = None,
        population_size: Optional[int] = None,
        constraints: Optional[SearchConstraints] = None,
        objective: Optional[Callable[[EvaluatedConfig], float]] = None,
        elite_fraction: Optional[float] = None,
        mutation_rate: Optional[float] = None,
        seed: Optional[int] = None,
        strategy: "str | SearchStrategy" = "evolutionary",
        backend: "str | EvaluationBackend | None" = None,
        n_workers: Optional[int] = None,
        cache: "EvaluationCache | str | Path | None" = None,
        initial_population: Optional[Sequence[MappingConfig]] = None,
        surrogate: Optional[SurrogateSettings] = None,
        objectives: Optional[ObjectiveSet] = None,
    ) -> SearchResult:
        """Run the mapping search (Fig. 5) and return its result.

        The paper's full budget is 200 generations of 60 individuals; the
        benches and examples use smaller budgets that converge on the reduced
        analytical problem in seconds.

        Parameters beyond the seed behaviour
        ------------------------------------
        strategy:
            ``"evolutionary"`` (default, the paper's Fig. 5 loop — identical
            results to the pre-engine implementation for a given seed),
            ``"nsga2"`` (non-dominated sorting + crowding distance), or
            ``"random"``; alternatively a ready-made
            :class:`~repro.engine.strategies.SearchStrategy` instance, which
            carries its own budget/seed (passing loop parameters alongside an
            instance is rejected as ambiguous).
        backend:
            ``"serial"`` (default) or ``"process"``, or an
            :class:`~repro.engine.backends.EvaluationBackend` instance.
        n_workers:
            Worker-process count; setting it implies the process backend.
        cache:
            An :class:`~repro.engine.cache.EvaluationCache` to share/reuse, or
            a path to a JSON-lines file for persistence across runs; ``None``
            uses this framework's own :attr:`evaluation_cache`, shared across
            every search it runs.
        initial_population:
            Optional warm-start seeds: configurations (at most
            ``population_size`` of them) evaluated as-is in the first
            generation before any random sampling — typically Pareto points
            translated from a related platform
            (:func:`repro.campaign.translate_config`).  ``None`` keeps the
            cold-start behaviour bit-for-bit.
        surrogate:
            ``None`` (default) runs every candidate through the real
            evaluation pipeline, bit-for-bit as before.  A
            :class:`~repro.engine.surrogate.SurrogateSettings` instance
            accelerates the search with per-objective GBDT models: after a
            short oracle bootstrap the inner strategy's generations are
            answered by the surrogate and only the incumbent Pareto front is
            periodically re-validated through the oracle.  The result's
            history/pareto/best then contain exclusively real evaluations
            and ``result.surrogate`` carries the
            :class:`~repro.engine.surrogate.SurrogateReport`.
        objectives:
            ``None`` (default) keeps the paper's latency/energy/accuracy
            trio, bit-for-bit.  An
            :class:`~repro.search.objectives.ObjectiveSet` re-shapes the
            reported Pareto front, drives the ``"nsga2"`` strategy's
            non-dominated ranking and crowding over the set's objective
            matrix, and (with ``surrogate``) trains one GBDT per objective
            under each spec's declared transform.  Build a serving-aware set
            with :func:`~repro.search.objectives.serving_objectives`.
        """
        if objectives is not None and not isinstance(objectives, ObjectiveSet):
            raise ConfigurationError(
                f"objectives must be an ObjectiveSet or None, got "
                f"{type(objectives).__name__}"
            )
        if surrogate is not None and not isinstance(surrogate, SurrogateSettings):
            raise ConfigurationError(
                f"surrogate must be a SurrogateSettings or None, got "
                f"{type(surrogate).__name__}"
            )
        if surrogate is not None and isinstance(strategy, SearchStrategy):
            raise ConfigurationError(
                "surrogate search wraps the inner strategy's objective; pass a "
                "strategy name, not an instance, when surrogate settings are given"
            )
        resolved_objective = paper_objective if objective is None else objective
        inner_objective = objective
        if surrogate is not None:
            inner_objective = SurrogateObjective(resolved_objective)
        strategy_obj = self._build_strategy(
            strategy,
            generations=generations,
            population_size=population_size,
            constraints=constraints,
            objective=inner_objective,
            elite_fraction=elite_fraction,
            mutation_rate=mutation_rate,
            seed=seed,
            initial_population=initial_population,
            objectives=objectives,
        )
        # The engine ranks the final result; keep its view aligned with the
        # strategy's own objective/constraints when an instance carries them
        # and the caller did not override.
        engine_objective = objective
        engine_constraints = constraints
        if isinstance(strategy, SearchStrategy):
            if engine_objective is None:
                engine_objective = getattr(strategy_obj, "objective", None)
            if engine_constraints is None:
                engine_constraints = getattr(strategy_obj, "constraints", None)
        backend_obj, owns_backend = self._build_backend(backend, n_workers)
        if cache is None:
            cache_obj = self.evaluation_cache
        elif isinstance(cache, EvaluationCache):
            cache_obj = cache
        else:
            cache_obj = EvaluationCache(path=cache)
        if surrogate is not None:
            backend_obj = SurrogateEvaluationBackend(
                backend_obj,
                evaluator=self.evaluator,
                settings=surrogate,
                objective=resolved_objective,
                objectives=objectives,
                owns_inner=owns_backend,
            )
            owns_backend = True
            if surrogate.bootstrap_from_cache:
                backend_obj.harvest(cache_obj)
            strategy_obj = SurrogateAssistedStrategy(
                inner=strategy_obj,
                backend=backend_obj,
                settings=surrogate,
                objective=resolved_objective,
                objectives=objectives,
            )
        engine = SearchEngine(
            evaluator=self.evaluator,
            backend=backend_obj,
            cache=cache_obj,
            constraints=engine_constraints,
            objective=engine_objective if engine_objective is not None else paper_objective,
            platform=self.platform,
            objectives=objectives,
        )
        try:
            result = engine.run(strategy_obj)
            if surrogate is not None:
                result = dataclasses.replace(result, surrogate=strategy_obj.report())
            return result
        finally:
            if owns_backend:
                backend_obj.close()

    # -- engine wiring ----------------------------------------------------------------
    def _build_strategy(
        self,
        strategy,
        generations: Optional[int],
        population_size: Optional[int],
        constraints: Optional[SearchConstraints],
        objective: Optional[Callable[[EvaluatedConfig], float]],
        elite_fraction: Optional[float],
        mutation_rate: Optional[float],
        seed: Optional[int],
        initial_population: Optional[Sequence[MappingConfig]] = None,
        objectives: Optional[ObjectiveSet] = None,
    ) -> SearchStrategy:
        if isinstance(strategy, SearchStrategy):
            conflicting = {
                "generations": generations,
                "population_size": population_size,
                "elite_fraction": elite_fraction,
                "mutation_rate": mutation_rate,
                "seed": seed,
                "initial_population": initial_population,
                "objectives": objectives,
            }
            passed = [name for name, value in conflicting.items() if value is not None]
            if passed:
                raise ConfigurationError(
                    "a SearchStrategy instance carries its own loop parameters; "
                    f"drop {passed} or pass a strategy name instead"
                )
            return strategy
        # The paper's full budget, used when nothing smaller is requested.
        generations = 200 if generations is None else generations
        population_size = 60 if population_size is None else population_size
        elite_fraction = 0.25 if elite_fraction is None else elite_fraction
        mutation_rate = 0.8 if mutation_rate is None else mutation_rate
        seed = self.seed if seed is None else seed
        objective = paper_objective if objective is None else objective
        if strategy == "evolutionary":
            return EvolutionaryStrategy(
                space=self.space,
                objective=objective,
                constraints=constraints,
                population_size=population_size,
                generations=generations,
                elite_fraction=elite_fraction,
                mutation_rate=mutation_rate,
                seed=seed,
                initial_population=initial_population,
            )
        if strategy == "nsga2":
            return NSGA2Strategy(
                space=self.space,
                constraints=constraints,
                population_size=population_size,
                generations=generations,
                mutation_rate=mutation_rate,
                seed=seed,
                initial_population=initial_population,
                objectives=objectives,
            )
        if strategy == "random":
            return RandomStrategy(
                space=self.space,
                population_size=population_size,
                generations=generations,
                seed=seed,
                initial_population=initial_population,
            )
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGY_NAMES} "
            "or a SearchStrategy instance"
        )

    def _build_backend(self, backend, n_workers: Optional[int]):
        """Resolve the backend choice; returns ``(backend, engine_owns_it)``."""
        if isinstance(backend, EvaluationBackend):
            if n_workers is not None:
                raise ConfigurationError("pass n_workers or a backend instance, not both")
            return backend, False
        if backend is None:
            backend = "serial" if n_workers is None else "process"
        if backend == "serial":
            if n_workers is not None and n_workers != 1:
                raise ConfigurationError("the serial backend cannot use n_workers")
            return SerialBackend(self.evaluator), True
        if backend == "process":
            return (
                ProcessPoolBackend(
                    self.evaluator,
                    n_workers=n_workers if n_workers is not None else 2,
                ),
                True,
            )
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected 'serial', 'process' "
            "or an EvaluationBackend instance"
        )

    # -- serving under traffic --------------------------------------------------------
    def simulate_traffic(
        self,
        candidate,
        workload,
        duration_ms: Optional[float] = None,
        policy=None,
        controller=None,
        seed: int = 0,
        deadline_ms: Optional[float] = None,
    ):
        """Deploy one mapping (or a serving policy) under a traffic scenario.

        Thin wrapper over :func:`repro.serving.bridge.simulate_deployment`
        bound to this framework's platform; returns the full
        :class:`~repro.serving.simulator.ServingResult` (call ``.metrics()``
        for the percentile/throughput aggregates).
        """
        from ..serving.bridge import simulate_deployment

        return simulate_deployment(
            candidate,
            self.platform,
            workload,
            duration_ms=duration_ms,
            policy=policy,
            controller=controller,
            seed=seed,
            deadline_ms=deadline_ms,
        )

    def rank_under_traffic(
        self,
        candidates: Sequence[EvaluatedConfig],
        workload,
        duration_ms: Optional[float] = None,
        metric: str = "p99_latency_ms",
        controller=None,
        seed: int = 0,
        deadline_ms: Optional[float] = None,
    ):
        """Re-rank searched mappings by simulated serving behaviour.

        The isolated Table II averages that drive :meth:`search` ignore
        contention; this replays one seeded scenario against every candidate
        (identical arrivals and difficulty stream) and sorts by ``metric``
        (default: p99 latency under traffic), best first.  See
        :func:`repro.serving.bridge.rank_under_traffic`.
        """
        from ..serving.bridge import rank_under_traffic

        return rank_under_traffic(
            list(candidates),
            self.platform,
            workload,
            duration_ms=duration_ms,
            metric=metric,
            controller=controller,
            seed=seed,
            deadline_ms=deadline_ms,
        )

    # -- cross-platform campaigns -----------------------------------------------------
    def _campaign_platforms(self, platforms, include_own_platform: bool, method: str):
        """The campaign grid: resolved platforms, own board prepended.

        Also enforces the shared restriction that campaigns cannot inherit a
        custom or surrogate cost model — it is calibrated to one platform
        and would mis-score every other cell.
        """
        from ..soc.presets import get_platform

        if self.cost_model is not None:
            raise ConfigurationError(
                f"{method}() cannot reuse this framework's cost model: a custom "
                "or surrogate cost model is calibrated to one platform and would "
                "mis-score the other cells; build the campaign from an "
                "analytical-oracle framework instead"
            )
        resolved = [
            item if isinstance(item, Platform) else get_platform(item)
            for item in platforms
        ]
        if include_own_platform and all(
            platform.name != self.platform.name for platform in resolved
        ):
            resolved.insert(0, self.platform)
        return resolved

    def campaign(
        self,
        platforms,
        scenarios=None,
        include_own_platform: bool = True,
        seed: Optional[int] = None,
        **kwargs,
    ):
        """Search this framework's network across a grid of platforms.

        Thin wrapper over :func:`repro.campaign.run_campaign` bound to
        ``self.network``: fans the search out over ``platforms`` (registry
        preset names and/or :class:`~repro.soc.platform.Platform` instances;
        this framework's own platform is prepended unless
        ``include_own_platform=False`` or it is already in the list),
        collects per-platform Pareto fronts and computes the portability
        matrix.  The facade's platform-independent evaluator settings
        (accuracy model, channel reordering, validation budget) carry over
        to every cell, so the own-platform cell reproduces what
        :meth:`search` would find.  A custom or surrogate cost model does
        *not* carry over — it is calibrated to one platform and would
        mis-score every other cell — so campaigning from such a framework
        is rejected (see ROADMAP: per-platform surrogates).  See
        :func:`repro.campaign.run_campaign` for the remaining keyword
        arguments (strategy, backend, n_workers, cache, budgets, traffic
        re-ranking, and ``measured_objectives=``/``serving_cache=`` for
        searching every cell under measured serving behaviour with one
        simulator-result cache shared grid-wide).
        """
        from ..campaign import run_campaign

        return run_campaign(
            self.network,
            self._campaign_platforms(platforms, include_own_platform, "campaign"),
            scenarios=scenarios,
            seed=self.seed if seed is None else seed,
            accuracy_model=self.evaluator.accuracy_model,
            reorder_channels=self.evaluator.reorder_channels,
            validation_samples=self.evaluator.validation_samples,
            **kwargs,
        )

    def serving_campaign(
        self,
        platforms,
        families=None,
        include_own_platform: bool = True,
        seed: Optional[int] = None,
        **kwargs,
    ):
        """Search a platform grid, then rank the boards under traffic families.

        Thin wrapper over :func:`repro.campaign.run_serving_campaign` bound
        to ``self.network``: every platform is searched exactly as in
        :meth:`campaign` (own platform prepended unless already listed or
        ``include_own_platform=False``), then each front is deployed under
        every member of every workload family
        (:mod:`repro.serving.families`) and the platforms are ranked by
        served-p99-per-joule.  Render the result with
        :func:`repro.core.report.traffic_ranking_summary`.  The same
        cost-model restriction as :meth:`campaign` applies.  See
        :func:`repro.campaign.run_serving_campaign` for the remaining
        keyword arguments (families, members_per_family, duration_ms,
        metric, deadline_ms, checkpoint_dir, cell_workers, the
        ``policies=`` axis deploying each front under static, switcher and
        DVFS-governor runtime policies, and
        ``measured_objectives=``/``serving_cache=`` for measured campaigns
        whose replays reuse the very simulations the searches paid for).
        """
        from ..campaign.serving_runner import run_serving_campaign

        return run_serving_campaign(
            self.network,
            self._campaign_platforms(
                platforms, include_own_platform, "serving_campaign"
            ),
            families=families,
            seed=self.seed if seed is None else seed,
            accuracy_model=self.evaluator.accuracy_model,
            reorder_channels=self.evaluator.reorder_channels,
            validation_samples=self.evaluator.validation_samples,
            **kwargs,
        )

    def fleet_campaign(
        self,
        mixes,
        families=None,
        seed: Optional[int] = None,
        **kwargs,
    ):
        """Search the mixes' platforms, then sweep fleet mixes over families.

        Thin wrapper over :func:`repro.campaign.run_fleet_campaign` bound to
        ``self.network``: the union of the mixes' platforms is searched
        exactly as in :meth:`campaign`, one front point per mix selection is
        distilled into a deployment, and every
        :class:`~repro.campaign.FleetMix` — platform counts x front-point
        choice x router x autoscaler — serves every member of every workload
        family, ranked by total joules within the p99 SLO.  Render the
        result with :func:`repro.core.report.fleet_summary`.  Unlike
        :meth:`campaign`, the grid comes entirely from the mixes — the
        framework's own platform only participates if some mix fields it —
        but the same cost-model restriction applies.  See
        :func:`repro.campaign.run_fleet_campaign` for the remaining keyword
        arguments (members_per_family, duration_ms, p99_slo_ms, deadline_ms,
        checkpoint_dir, cell_workers, ``measured_objectives=``/
        ``serving_cache=``, ...).
        """
        from ..campaign.fleet_runner import run_fleet_campaign

        if self.cost_model is not None:
            raise ConfigurationError(
                "fleet_campaign() cannot reuse this framework's cost model: a "
                "custom or surrogate cost model is calibrated to one platform "
                "and would mis-score the other cells; build the campaign from "
                "an analytical-oracle framework instead"
            )
        return run_fleet_campaign(
            self.network,
            mixes,
            families=families,
            seed=self.seed if seed is None else seed,
            accuracy_model=self.evaluator.accuracy_model,
            reorder_channels=self.evaluator.reorder_channels,
            validation_samples=self.evaluator.validation_samples,
            **kwargs,
        )

    # -- Pareto selection -------------------------------------------------------------
    def pareto(
        self,
        evaluated: Sequence[EvaluatedConfig],
        objectives: Optional[ObjectiveSet] = None,
    ) -> list:
        """Non-dominated subset of ``evaluated`` (default objective trio,
        or a custom :class:`~repro.search.objectives.ObjectiveSet`)."""
        return pareto_front(list(evaluated), objectives)

    def select_latency_oriented(
        self, evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
    ) -> EvaluatedConfig:
        """Pick the "Ours-L" model from a (Pareto) set."""
        return select_latency_oriented(list(evaluated), max_accuracy_drop=max_accuracy_drop)

    def select_energy_oriented(
        self, evaluated: Sequence[EvaluatedConfig], max_accuracy_drop: Optional[float] = None
    ) -> EvaluatedConfig:
        """Pick the "Ours-E" model from a (Pareto) set."""
        return select_energy_oriented(list(evaluated), max_accuracy_drop=max_accuracy_drop)

    def select_serving_oriented(
        self,
        evaluated: Sequence[EvaluatedConfig],
        family=None,
        rate_rps: Optional[float] = None,
        max_accuracy_drop: Optional[float] = None,
    ) -> EvaluatedConfig:
        """Pick the front member that serves ``family`` (or ``rate_rps``) best.

        Unlike :meth:`select_energy_oriented`, which ignores load, this
        scores each candidate by its isolated latency *plus* the M/D/1
        queueing delay its throughput implies at the family's peak arrival
        rate, scaled by relative accuracy — so energy-frugal mappings that
        saturate under bursts lose to slightly hungrier ones that keep the
        queue short.  See :func:`repro.search.pareto.select_serving_oriented`.
        """
        return select_serving_oriented(
            list(evaluated),
            family=family,
            rate_rps=rate_rps,
            max_accuracy_drop=max_accuracy_drop,
        )

    def select_measured_serving(
        self,
        evaluated: Sequence[EvaluatedConfig],
        family,
        duration_ms: float = 400.0,
        members: int = 3,
        cache=None,
        max_accuracy_drop: Optional[float] = None,
    ) -> EvaluatedConfig:
        """Pick the front member that *measurably* serves ``family`` best.

        The measured counterpart of :meth:`select_serving_oriented`: instead
        of the M/D/1 closed form, each candidate is distilled into a
        deployment and replayed through the traffic simulator under the
        family's peak member on this framework's platform, scoring by
        isolated latency plus the *measured* mean queueing delay (scaled by
        relative accuracy).  Pass a :class:`~repro.serving.ServingResultCache`
        (or a path) as ``cache`` to skip re-simulating repeated deployments.
        See :func:`repro.search.pareto.select_measured_serving`.
        """
        return select_measured_serving(
            list(evaluated),
            self.platform,
            family,
            duration_ms=duration_ms,
            seed=self.seed,
            members=members,
            cache=cache,
            max_accuracy_drop=max_accuracy_drop,
        )
