"""Plain-text report tables in the style of the paper's Table II.

The benchmark harness prints the same rows the paper reports -- optimisation
strategy, implementation, top-1 accuracy, average energy, average latency and
feature-map reuse -- so a reader can line the reproduction up against the
publication.  Only string formatting lives here; all numbers come from
:class:`~repro.search.evaluation.EvaluatedConfig` instances.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..search.evaluation import EvaluatedConfig

__all__ = ["format_table", "table_to_string", "table2_row", "comparison_row"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    ]
    return "\n".join([header, separator, *body])


# Backwards-friendly alias: some call sites read better with this name.
table_to_string = format_table


def table2_row(
    strategy: str,
    implementation: str,
    evaluated: EvaluatedConfig,
    use_worst_case: bool = False,
) -> dict:
    """One row of the Table II reproduction.

    ``use_worst_case`` reports the all-stages-instantiated metrics, which is
    the right view for non-dynamic baselines (single-unit and static
    partitioned mappings).
    """
    latency = evaluated.worst_case_latency_ms if use_worst_case else evaluated.latency_ms
    energy = evaluated.worst_case_energy_mj if use_worst_case else evaluated.energy_mj
    return {
        "Opt. Strategy": strategy,
        "NN Implement.": implementation,
        "TOP-1 Acc (%)": 100.0 * evaluated.accuracy,
        "Avg. Enrg. (mJ)": energy,
        "Avg. Lat. (ms)": latency,
        "Fmap reuse (%)": 100.0 * evaluated.reuse_fraction,
    }


def comparison_row(label: str, reference: EvaluatedConfig, candidate: EvaluatedConfig) -> dict:
    """Speedup / energy-gain row of a candidate against a reference mapping."""
    return {
        "candidate": label,
        "speedup_x": reference.latency_ms / candidate.latency_ms,
        "energy_gain_x": reference.energy_mj / candidate.energy_mj,
        "accuracy_delta_pct": 100.0 * (candidate.accuracy - reference.accuracy),
        "reuse_pct": 100.0 * candidate.reuse_fraction,
    }
