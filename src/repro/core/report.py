"""Plain-text report tables in the style of the paper's Table II.

The benchmark harness prints the same rows the paper reports -- optimisation
strategy, implementation, top-1 accuracy, average energy, average latency and
feature-map reuse -- so a reader can line the reproduction up against the
publication.  Only string formatting lives here; all numbers come from
:class:`~repro.search.evaluation.EvaluatedConfig` instances.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence

from ..search.evaluation import EvaluatedConfig
from ..search.evolutionary import SearchResult
from ..search.objectives import ObjectiveSet, as_objective_set
from ..search.pareto import hypervolume, select_serving_oriented

__all__ = [
    "format_table",
    "table_to_string",
    "table2_row",
    "comparison_row",
    "convergence_table",
    "search_summary",
    "objective_table",
    "serving_table",
    "serving_summary",
    "campaign_table",
    "portability_table",
    "campaign_summary",
    "surrogate_summary",
    "serving_campaign_table",
    "policy_adaptivity_table",
    "traffic_ranking_summary",
    "fleet_table",
    "fleet_summary",
    "hypervolume_curve",
    "generations_to_reach",
]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    ]
    return "\n".join([header, separator, *body])


# Backwards-friendly alias: some call sites read better with this name.
table_to_string = format_table


def table2_row(
    strategy: str,
    implementation: str,
    evaluated: EvaluatedConfig,
    use_worst_case: bool = False,
) -> dict:
    """One row of the Table II reproduction.

    ``use_worst_case`` reports the all-stages-instantiated metrics, which is
    the right view for non-dynamic baselines (single-unit and static
    partitioned mappings).
    """
    latency = evaluated.worst_case_latency_ms if use_worst_case else evaluated.latency_ms
    energy = evaluated.worst_case_energy_mj if use_worst_case else evaluated.energy_mj
    return {
        "Opt. Strategy": strategy,
        "NN Implement.": implementation,
        "TOP-1 Acc (%)": 100.0 * evaluated.accuracy,
        "Avg. Enrg. (mJ)": energy,
        "Avg. Lat. (ms)": latency,
        "Fmap reuse (%)": 100.0 * evaluated.reuse_fraction,
    }


def comparison_row(label: str, reference: EvaluatedConfig, candidate: EvaluatedConfig) -> dict:
    """Speedup / energy-gain row of a candidate against a reference mapping."""
    return {
        "candidate": label,
        "speedup_x": reference.latency_ms / candidate.latency_ms,
        "energy_gain_x": reference.energy_mj / candidate.energy_mj,
        "accuracy_delta_pct": 100.0 * (candidate.accuracy - reference.accuracy),
        "reuse_pct": 100.0 * candidate.reuse_fraction,
    }


def convergence_table(result: SearchResult, every: int = 1) -> str:
    """Per-generation convergence table with the engine's telemetry columns.

    Besides the paper's convergence curve (best objective per generation),
    this surfaces the evaluation-cache hit rate and the wall-clock time each
    generation's evaluation took, so cache efficacy and backend scaling are
    visible at a glance.  ``every`` subsamples long runs (the final
    generation is always included).
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    stats = result.generations
    selected = [s for s in stats if s.generation % every == 0]
    if stats and stats[-1] not in selected:
        selected.append(stats[-1])
    rows = [
        {
            "gen": s.generation,
            "evaluated": s.evaluated,
            "feasible": s.feasible,
            "best_objective": s.best_objective,
            "best_lat_ms": s.best_latency_ms,
            "best_enrg_mJ": s.best_energy_mj,
            "cache_hit_%": 100.0 * s.cache_hit_rate,
            "wall_ms": 1000.0 * s.wall_clock_s,
        }
        for s in selected
    ]
    return format_table(rows)


def objective_table(
    evaluated: Sequence[EvaluatedConfig],
    objectives: Optional[ObjectiveSet] = None,
) -> str:
    """One row per configuration with the objective set's named columns.

    The default set renders the paper's trio (``latency_ms``, ``energy_mj``,
    ``accuracy``); a custom :class:`~repro.search.objectives.ObjectiveSet`
    renders whatever objectives it declares, in declaration order and in
    their natural units (accuracy as accuracy, not its negation).  Values an
    extractor cannot produce render as ``inf``.
    """
    objective_set = as_objective_set(objectives)
    rows = []
    for item in evaluated:
        row: dict = {"config": item.config.describe()}
        for spec in objective_set:
            row[spec.name] = spec.raw_value(item)
        rows.append(row)
    return format_table(rows, float_format="{:.4f}")


def serving_table(
    metrics_list,
    front: Optional[Sequence[EvaluatedConfig]] = None,
    family=None,
    rate_rps: Optional[float] = None,
    max_accuracy_drop: Optional[float] = None,
) -> str:
    """Side-by-side percentile table of serving runs (one row per policy/run).

    Accepts :class:`~repro.serving.metrics.ServingMetrics` instances (their
    ``summary_row`` views are rendered) or ready-made row dictionaries.

    When ``front`` is given (with a workload ``family`` or explicit
    ``rate_rps``), a footer names the front member
    :func:`~repro.search.pareto.select_serving_oriented` would deploy for
    that load — its isolated latency, the M/D/1 queueing delay expected at
    the peak rate, and its accuracy — so the table answers "which mapping
    should actually serve this" next to the measured runs.
    """
    rows = [
        metrics.summary_row() if hasattr(metrics, "summary_row") else dict(metrics)
        for metrics in metrics_list
    ]
    table = format_table(rows)
    if front is None:
        return table
    pick = select_serving_oriented(
        list(front),
        family=family,
        rate_rps=rate_rps,
        max_accuracy_drop=max_accuracy_drop,
    )
    from ..serving.policies import Deployment

    rate = float(rate_rps) if rate_rps is not None else float(family.peak_rate_rps)
    wait = Deployment.from_evaluated(pick).expected_wait_ms(rate)
    wait_text = f"{wait:.2f} ms wait" if math.isfinite(wait) else "saturated"
    footer = (
        f"serving-oriented pick @ {rate:.0f} rps: {pick.config.describe()} "
        f"({pick.latency_ms:.2f} ms isolated, {wait_text}, "
        f"{100.0 * pick.accuracy:.1f}% top-1)"
    )
    return "\n".join([table, footer])


def serving_summary(metrics) -> str:
    """One-paragraph summary of a single serving run."""
    utilisation = ", ".join(
        f"{name} {100.0 * value:.0f}%" for name, value in sorted(metrics.utilisation.items())
    )
    lines = [
        f"{metrics.policy}: {metrics.num_requests} requests over "
        f"{metrics.duration_ms / 1000.0:.1f}s ({metrics.throughput_rps:.1f} req/s)",
        f"latency p50/p95/p99 {metrics.p50_latency_ms:.2f}/{metrics.p95_latency_ms:.2f}/"
        f"{metrics.p99_latency_ms:.2f} ms (mean {metrics.mean_latency_ms:.2f} ms, "
        f"queueing {metrics.mean_queueing_ms:.2f} ms)",
        f"deadline misses {100.0 * metrics.deadline_miss_rate:.2f}%, "
        f"accuracy {100.0 * metrics.accuracy:.1f}%, "
        f"energy {metrics.energy_per_request_mj:.2f} mJ/request "
        f"({metrics.total_energy_mj / 1000.0:.2f} J total)",
        f"utilisation: {utilisation}; mean in-flight {metrics.mean_in_flight:.2f} "
        f"(peak {metrics.peak_in_flight})",
    ]
    return "\n".join(lines)


def campaign_table(campaign) -> str:
    """One row per (platform, scenario) cell of a campaign.

    Reports the searched best mapping per cell — accuracy, averages, front
    size — plus how many of the cell's Pareto points survive translation to
    every *other* platform (summed over targets), the cross-platform
    headline of :class:`~repro.campaign.runner.CampaignResult`.
    """
    # The sim_cache column only appears when at least one cell searched
    # under measured serving objectives, so proxy-objective campaigns render
    # byte-identically to the pre-measured format.
    show_cache = any(
        getattr(cell, "measured_cache_stats", None) is not None
        for cell in campaign.cells
    )
    rows = []
    for cell in campaign.cells:
        outbound = [
            entry
            for entry in campaign.portability
            if entry.source == cell.platform_name and entry.scenario == cell.scenario_name
        ]
        transferred = sum(entry.transferred for entry in outbound)
        surviving = sum(entry.surviving_on_front for entry in outbound)
        best = cell.result.best
        row = {
            "platform": cell.platform_name,
            "scenario": cell.scenario_name,
            "evals": cell.result.num_evaluations,
            "front": len(cell.front),
            "best_lat_ms": best.latency_ms,
            "best_enrg_mJ": best.energy_mj,
            "acc_%": 100.0 * best.accuracy,
            "travels": f"{surviving}/{transferred}" if transferred else "-",
        }
        if show_cache:
            stats = getattr(cell, "measured_cache_stats", None)
            row["sim_cache"] = (
                f"{stats.avoided}/{stats.lookups}" if stats is not None else "-"
            )
        rows.append(row)
    return format_table(rows)


def portability_table(campaign, scenario: Optional[str] = None) -> str:
    """The regret matrix: rows are source platforms, columns are targets.

    Each entry is ``best-transferred-objective / native-best-objective`` —
    1.00 means the source front transfers perfectly; larger means deploying
    the source's mappings on that target leaves quality on the table.
    """
    scenario = campaign.scenario_names[0] if scenario is None else scenario
    matrix = campaign.portability_matrix(scenario)
    rows = []
    for source in campaign.platform_names:
        row = {"searched on \\ deployed on": source}
        for target in campaign.platform_names:
            if source == target:
                row[target] = "1.00*"
            else:
                row[target] = matrix[(source, target)]
        rows.append(row)
    return format_table(rows)


def _measured_cache_line(cells) -> Optional[str]:
    """Aggregate measured-serving cache efficiency over the given cells.

    ``None`` when no cell searched under measured objectives (the line — and
    only the line — is omitted, keeping proxy-campaign reports
    byte-identical).  The counts are
    :class:`~repro.serving.result_cache.MeasuredCellStats` — pure functions
    of each cell's seeded search trajectory — so the line is byte-identical
    across serial, cell-parallel and checkpoint-resumed runs.
    """
    stats = [
        item
        for item in (getattr(cell, "measured_cache_stats", None) for cell in cells)
        if item is not None
    ]
    if not stats:
        return None
    lookups = sum(item.lookups for item in stats)
    unique = sum(item.unique for item in stats)
    return (
        f"measured serving cache: {lookups - unique}/{lookups} lookups avoided "
        f"a simulation ({unique} unique replays)"
    )


def campaign_summary(campaign) -> str:
    """Full plain-text report of a campaign run (deterministic for a seed).

    Contains only seed-determined numbers — no wall-clock or cache-rate
    telemetry — so two runs with the same seed produce byte-identical text
    regardless of backend or machine.
    """
    lines = [
        f"campaign: {campaign.network_name} x {len(campaign.platform_names)} platforms "
        f"x {len(campaign.scenario_names)} scenarios (seed {campaign.seed})",
        "",
        campaign_table(campaign),
    ]
    for scenario in campaign.scenario_names:
        lines.append("")
        lines.append(f"portability regret ({scenario}):")
        lines.append(portability_table(campaign, scenario))
        dominated = [
            entry
            for entry in campaign.portability
            if entry.scenario == scenario and not entry.fully_pareto_optimal
        ]
        for entry in dominated:
            lines.append(
                f"  {entry.source} front is not Pareto-optimal on {entry.target}: "
                f"{entry.surviving_on_front}/{entry.transferred} mappings survive"
            )
    traffic_cells = [cell for cell in campaign.cells if cell.traffic_ranking]
    if traffic_cells:
        lines.append("")
        lines.append("under shared traffic (best per platform):")
        for cell in traffic_cells:
            winner = cell.traffic_ranking[0]
            lines.append(
                f"  {cell.platform_name}/{cell.scenario_name}: "
                f"{winner.deployment.name} "
                f"(p99 {winner.metrics.p99_latency_ms:.2f} ms, "
                f"{winner.metrics.energy_per_request_mj:.2f} mJ/req)"
            )
    cache_line = _measured_cache_line(campaign.cells)
    if cache_line is not None:
        lines.append("")
        lines.append(cache_line)
    return "\n".join(lines)


def _shared_reference(
    fronts: Sequence[Sequence[EvaluatedConfig]],
    objectives: Optional[ObjectiveSet] = None,
) -> List[float]:
    """Reference point dominated by every member of every given front.

    Built from the per-objective maxima over the union (the default set's
    latency, energy, negated accuracy — all minimised), nudged strictly
    worse so boundary points still contribute volume.  Using one shared
    reference makes two fronts' hypervolumes directly comparable.
    """
    return as_objective_set(objectives).reference_point(fronts)


def surrogate_summary(campaign, baseline=None) -> str:
    """Per-cell fidelity report of a surrogate-accelerated campaign.

    One row per (platform, scenario) cell: oracle vs surrogate evaluation
    counts, the candidate-throughput multiplier, surrogate-vs-oracle rank
    correlation over the validated points, the validated-front regret, and
    how many validation rounds ran.  All numbers are seed-determined and
    rendered at fixed precision, so the text is byte-identical across
    backends and machines.

    ``baseline`` may be the same campaign run with ``surrogate=None``; each
    row then also reports ``hv_vs_oracle`` — the cell front's hypervolume
    divided by the baseline cell front's, both measured against one shared
    reference point — quantifying how much front quality the oracle calls
    saved actually cost.
    """
    rows = []
    total_oracle = 0
    total_surrogate = 0
    for cell in campaign.cells:
        report = cell.surrogate_report
        if report is None:
            raise ValueError(
                f"cell {cell.platform_name}/{cell.scenario_name} has no surrogate "
                "report; run the campaign with surrogate=SurrogateSettings(...)"
            )
        total_oracle += report.oracle_evaluations
        total_surrogate += report.surrogate_evaluations
        row = {
            "platform": cell.platform_name,
            "scenario": cell.scenario_name,
            "oracle": report.oracle_evaluations,
            "surrogate": report.surrogate_evaluations,
            "throughput_x": f"{report.throughput_multiplier:.2f}",
            "rank_corr": f"{report.rank_correlation:.3f}",
            "front_regret": f"{report.front_regret:.4f}",
            "validations": report.validations,
        }
        if baseline is not None:
            reference_cell = next(
                base
                for base in baseline.cells
                if base.platform_name == cell.platform_name
                and base.scenario_name == cell.scenario_name
            )
            reference = _shared_reference([cell.front, reference_cell.front])
            base_volume = hypervolume(reference_cell.front, reference)
            volume = hypervolume(cell.front, reference)
            row["hv_vs_oracle"] = (
                f"{volume / base_volume:.4f}" if base_volume > 0.0 else "-"
            )
        rows.append(row)
    saved = total_oracle + total_surrogate
    lines = [
        f"surrogate campaign: {total_oracle} oracle evaluations carried "
        f"{saved} candidate evaluations "
        f"({saved / total_oracle:.1f}x throughput)"
        if total_oracle
        else "surrogate campaign: no oracle evaluations recorded",
        "",
        format_table(rows),
    ]
    return "\n".join(lines)


def serving_campaign_table(serving) -> str:
    """One row per (family, platform) cell of a serving campaign.

    Rows come out family-major (every platform under the first family, then
    the next family), mirroring the cell order of
    :class:`~repro.campaign.serving_runner.ServingCampaignResult`; the
    ``served_p99/J`` column is the cell's headline score (see the
    serving-runner module docs), rendered at fixed precision so the table is
    byte-deterministic for a seed.
    """
    return format_table([cell.summary_row() for cell in serving.cells])


def policy_adaptivity_table(serving) -> str:
    """One row per (family, platform, policy) of a policy-axis campaign.

    ``vs_static`` is the policy's served-p99-per-joule as a multiple of the
    same cell's static baseline — above ``1.00x`` means runtime adaptivity
    beat the best static front member for that traffic.  Fixed precision
    keeps the table byte-deterministic for a seed.
    """
    rows = []
    for cell in serving.cells:
        kinds = cell.policies
        static_score = cell.policy_score("static") if "static" in kinds else None
        for policy in kinds:
            score = cell.policy_score(policy)
            rows.append(
                {
                    "family": cell.family_name,
                    "platform": cell.platform_name,
                    "policy": policy,
                    "p99_ms": cell.policy_mean(policy, "p99_latency_ms"),
                    "mJ/req": cell.policy_mean(policy, "energy_per_request_mj"),
                    "served_p99/J": f"{score:.4f}",
                    "vs_static": (
                        f"{score / static_score:.2f}x"
                        if static_score
                        else "n/a"
                    ),
                }
            )
    return format_table(rows)


def traffic_ranking_summary(serving) -> str:
    """Full plain-text report of a serving campaign (deterministic per seed).

    Contains only seed-determined numbers — the cell table, the per-family
    platform ranking by served-p99-per-joule, where that serving winner
    disagrees with the platform the isolated-energy view would have picked,
    and (for policy-axis campaigns) the adaptivity table answering when the
    adaptive policies beat the best static point.  Static-only campaigns
    render byte-identically to the pre-policy format.
    """
    lines = [
        f"serving campaign: {serving.network_name} x "
        f"{len(serving.platform_names)} platforms x "
        f"{len(serving.family_names)} families x "
        f"{serving.members_per_family} members "
        f"(seed {serving.seed}, {serving.duration_ms:.0f} ms/member, "
        f"ranked by {serving.metric})",
        "",
        serving_campaign_table(serving),
        "",
        "traffic ranking (served-p99-per-joule, best first):",
    ]
    for family in serving.family_names:
        ranked = serving.ranking(family)
        lines.append(
            f"  {family}: "
            + " > ".join(
                f"{cell.platform_name} ({cell.served_p99_per_joule:.4f})"
                for cell in ranked
            )
        )
    isolated = serving.isolated_energy_best()
    lines.append("")
    lines.append(f"isolated-energy best: {isolated}")
    disagreements = [
        family
        for family in serving.family_names
        if serving.best_platform(family) != isolated
    ]
    if disagreements:
        for family in disagreements:
            lines.append(
                f"  {family}: served best is {serving.best_platform(family)}, "
                f"not {isolated}"
            )
    else:
        lines.append(
            "  every family's served winner matches the isolated-energy best"
        )
    policies = tuple(getattr(serving, "policies", ("static",)))
    if policies != ("static",):
        lines.append("")
        lines.append("policy adaptivity (served-p99-per-joule vs best static point):")
        lines.append(policy_adaptivity_table(serving))
        for policy in policies:
            if policy == "static":
                continue
            wins = serving.adaptivity_wins(policy)
            if wins:
                lines.append(
                    f"  {policy} beats the best static point on: "
                    + ", ".join(f"{family}@{platform}" for platform, family in wins)
                )
            else:
                lines.append(f"  {policy} never beats the best static point")
    cache_line = _measured_cache_line(serving.campaign.cells)
    if cache_line is not None:
        lines.append("")
        lines.append(cache_line)
    return "\n".join(lines)


def fleet_table(fleet) -> str:
    """One row per (family, mix) cell of a fleet campaign.

    Rows come out family-major (every mix under the first family, then the
    next family), mirroring the cell order of
    :class:`~repro.campaign.fleet_runner.FleetCampaignResult`; ``slo`` marks
    whether every member stayed inside the p99 budget without drops, and
    ``MJ/day@1M`` is the projected megajoules to serve one million requests
    per day at the cell's per-request efficiency.  Fixed precision keeps the
    table byte-deterministic for a seed.
    """
    return format_table([cell.summary_row() for cell in fleet.cells])


def fleet_summary(fleet) -> str:
    """Full plain-text report of a fleet campaign (deterministic per seed).

    Contains only seed-determined numbers — the cell table, each mix's
    composition, and the per-family mix ranking (within-SLO mixes by total
    joules, SLO violators after, by how badly they miss).
    """
    lines = [
        f"fleet campaign: {fleet.network_name} x "
        f"{len(fleet.mix_names)} mixes x "
        f"{len(fleet.family_names)} families x "
        f"{fleet.members_per_family} members "
        f"(seed {fleet.seed}, {fleet.duration_ms:.0f} ms/member, "
        f"p99 SLO {fleet.p99_slo_ms:.0f} ms)",
        "",
        "mixes:",
    ]
    for mix in fleet.mixes:
        counts = " + ".join(
            f"{count}x {spec if isinstance(spec, str) else spec.name}"
            for spec, count in mix.counts
        )
        scaler = "autoscaled" if mix.autoscaler is not None else "always-on"
        lines.append(
            f"  {mix.name}: {counts} ({mix.selection} front point, "
            f"{mix.router} router, {scaler})"
        )
    lines.extend(["", fleet_table(fleet), ""])
    lines.append("fleet ranking (joules within p99 SLO, best first):")
    for family in fleet.family_names:
        ranked = fleet.ranking(family)
        lines.append(
            f"  {family}: "
            + " > ".join(
                f"{cell.mix_name} ({cell.total_joules:.3f} J)"
                if cell.within_slo
                else f"{cell.mix_name} (SLO MISS @ {cell.worst_p99_latency_ms:.1f} ms)"
                for cell in ranked
            )
        )
        if ranked[0].within_slo:
            best = ranked[0]
            lines.append(
                f"    best: {best.mix_name} at "
                f"{best.daily_joules() / 1e6:.3f} MJ per 1M requests/day"
            )
        else:
            lines.append("    best: none within SLO")
    return "\n".join(lines)


def hypervolume_curve(
    result: SearchResult, reference: Sequence[float]
) -> List[float]:
    """Cumulative dominated hypervolume after each generation of a search.

    The engine's history is deduplicated in discovery order and every
    :class:`~repro.search.evolutionary.GenerationStats` records how many
    configurations it contributed (``new_configs``), so the front the search
    knew after generation ``g`` is exactly a prefix of the history.  The
    returned list has one entry per generation and is non-decreasing; two
    searches are compared by how fast their curves rise towards a shared
    ``reference`` point (latency, energy, negated accuracy — all minimised).
    """
    curve: List[float] = []
    offset = 0
    for stats in result.generations:
        offset += stats.new_configs
        curve.append(hypervolume(result.history[:offset], reference))
    return curve


def generations_to_reach(curve: Sequence[float], target: float) -> Optional[int]:
    """First generation index at which ``curve`` reaches ``target``.

    ``curve`` is a per-generation quality sequence (e.g. from
    :func:`hypervolume_curve`, where larger is better); returns ``None`` when
    the target is never reached within the budget.
    """
    for generation, value in enumerate(curve):
        if value >= target:
            return generation
    return None


def search_summary(result: SearchResult) -> str:
    """One-paragraph summary of a search run, including cache/time totals."""
    stats = result.generations
    total_wall_s = sum(s.wall_clock_s for s in stats)
    total_lookups = sum(s.evaluated for s in stats)
    hits = sum(s.cache_hit_rate * s.evaluated for s in stats)
    overall_hit_rate = hits / total_lookups if total_lookups else 0.0
    lines = [
        f"{len(stats)} generations, {total_lookups} evaluations requested, "
        f"{result.num_evaluations} distinct configurations",
        f"cache hit rate {100.0 * overall_hit_rate:.1f}%, "
        f"evaluation wall-clock {total_wall_s:.2f}s",
        f"{len(result.feasible)} feasible, {len(result.pareto)} on the Pareto front",
        f"best: {result.best.config.describe()} "
        f"({result.best.latency_ms:.2f} ms, {result.best.energy_mj:.2f} mJ, "
        f"{100.0 * result.best.accuracy:.1f}% top-1)",
    ]
    return "\n".join(lines)
