"""Content-keyed serving-result cache with optional JSONL persistence.

``measured_serving_objectives`` puts the traffic simulator *inside* the
search loop: every NSGA-II domination check asks for a candidate's measured
queueing wait, and the same candidate is interrogated many times per
generation (pairwise domination is O(n^2)).  Re-simulating an unchanged
deployment every time would make measured search orders of magnitude slower
than the M/D/1 proxy; the :class:`ServingResultCache` makes each distinct
replay happen exactly once.

Entries are keyed by :func:`serving_digest` — a stable content digest of the
*deployment* (per-stage services/energies/accuracies/DVFS points; the display
name is deliberately excluded), the platform, the replayed workload member,
the traffic seed and the replay budget (duration, deadline, policy tag).  Two
searched configurations that distil to the same deployment share one entry;
touching the family, seed or budget changes every key, so stale results can
never be served.

Persistence mirrors :class:`~repro.engine.cache.EvaluationCache`: one JSON
line per stored result (human-readable metric summary + pickled
:class:`~repro.serving.metrics.ServingMetrics` payload), ``ensure_ascii=False``
so non-ASCII family names stay readable, eager reload on startup, and
malformed/truncated lines are skipped with a logged recovery count instead of
aborting the load.

.. warning::
   The payload is a pickle: loading a cache file deserialises it with
   :func:`pickle.loads`, which can execute arbitrary code.  Only open cache
   files you wrote yourself or obtained from a source you trust.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import pickle
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from dataclasses import dataclass

from ..engine.cache import CacheStats
from ..errors import ConfigurationError
from ..soc.platform import Platform
from .metrics import ServingMetrics
from .policies import Deployment
from .workload import ArrivalProcess, Request

__all__ = [
    "ServingResultCache",
    "ServingCacheRecorder",
    "MeasuredCellStats",
    "serving_digest",
    "deployment_digest",
]

logger = logging.getLogger(__name__)

#: Format marker written into every persisted line; bump on layout changes.
_PERSIST_VERSION = 1


def deployment_digest(deployment: Deployment) -> str:
    """Stable content digest of a deployment's *serving behaviour*.

    Covers every field that shapes simulation — per-stage units, service
    times, energies, exit accuracies and DVFS points — but not ``name``,
    which is display-only (``rank_under_traffic`` names front members by
    position).  Two searched configurations distilling to identical stage
    tuples therefore share one digest, exactly like the evaluation cache
    shares content-identical mappings.
    """
    payload = repr(
        (
            deployment.unit_names,
            deployment.service_ms,
            deployment.energy_mj,
            deployment.stage_accuracies,
            deployment.dvfs_scales,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def serving_digest(
    deployment: Deployment,
    platform: Platform,
    workload: Union[ArrivalProcess, Sequence[Request]],
    duration_ms: float,
    seed: int,
    deadline_ms: Optional[float] = None,
    policy_tag: str = "static",
) -> str:
    """Content key of one simulated replay: deployment x scenario x budget.

    The workload contributes its ``repr`` (family members are frozen
    dataclasses whose repr encodes every parameter), the platform its
    content-bearing repr, and the replay budget the duration, deadline,
    traffic seed and policy tag — so any change that could alter a single
    simulated record changes the key.
    """
    workload_identity = (
        repr(workload)
        if isinstance(workload, ArrivalProcess)
        else repr(tuple(workload))
    )
    payload = "\n".join(
        [
            deployment_digest(deployment),
            repr(platform),
            workload_identity,
            repr(float(duration_ms)),
            repr(None if deadline_ms is None else float(deadline_ms)),
            repr(int(seed)),
            policy_tag,
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ServingResultCache:
    """In-memory (and optionally on-disk) store of simulated serving metrics.

    Parameters
    ----------
    path:
        Optional JSON-lines file.  Existing lines are loaded eagerly; every
        :meth:`store` appends one line so independent runs (and process-pool
        workers writing through their own handles) accumulate into a shared
        result store.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._entries: Dict[str, ServingMetrics] = {}
        self._families: Dict[str, str] = {}
        self._session: list = []
        self.stats = CacheStats()
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    # -- lookup / store ----------------------------------------------------------
    def lookup(self, digest: str) -> Optional[ServingMetrics]:
        """Return the cached metrics for ``digest``, recording a hit or miss."""
        value = self._entries.get(digest)
        if value is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def peek(self, digest: str) -> Optional[ServingMetrics]:
        """Like :meth:`lookup` but without touching the statistics."""
        return self._entries.get(digest)

    def family(self, digest: str) -> str:
        """Family label stored next to ``digest`` ("" when none was given)."""
        return self._families.get(digest, "")

    def items(self) -> Iterator[Tuple[str, ServingMetrics]]:
        """Iterate over ``(digest, metrics)`` pairs (no stat updates)."""
        return iter(self._entries.items())

    def store(self, digest: str, value: ServingMetrics, family: str = "") -> None:
        """Insert freshly simulated metrics and persist them if configured.

        Storing under an existing digest keeps the first entry, but a
        *conflicting* payload — same content key, different measured numbers,
        e.g. a stale file from a different simulator build that kept the same
        persistence version — is logged as a warning instead of being dropped
        without a trace.
        """
        if not isinstance(value, ServingMetrics):
            raise ConfigurationError(
                f"cache values must be ServingMetrics, got {type(value).__name__}"
            )
        existing = self._entries.get(digest)
        if existing is not None:
            stored, offered = self._metrics_summary(existing), self._metrics_summary(value)
            if stored != offered:
                logger.warning(
                    "serving result cache: digest %s already stored with conflicting "
                    "metrics (kept %s, dropped %s) — the existing entry may come from "
                    "a stale cache file written by a different simulator build",
                    digest[:16],
                    stored,
                    offered,
                )
            return
        self._entries[digest] = value
        if family:
            self._families[digest] = family
        self._session.append((digest, value, family))
        if self.path is not None:
            self._append(digest, value, family)

    # -- cross-process merge-back ------------------------------------------------
    def export_session(self) -> Tuple[Tuple[str, ServingMetrics, str], ...]:
        """Entries stored through *this* handle since construction.

        A process-pool worker builds its own handle, serves a cell, and ships
        this export back with the cell result; the parent then
        :meth:`absorb`\\ s it so later cells see the worker's simulations.
        Loaded and absorbed entries are excluded — only genuinely new
        simulations travel.
        """
        return tuple(self._session)

    def absorb(self, entries) -> int:
        """Merge ``(digest, metrics, family)`` tuples into memory; return #added.

        Memory-only by design: a worker whose handle was path-backed already
        appended its entries to the shared JSONL, so writing them again here
        would duplicate lines.  Absorbed entries do not join this handle's
        session export (they are not *this* process's simulations).
        """
        added = 0
        for digest, value, family in entries:
            if digest in self._entries:
                continue
            if not isinstance(value, ServingMetrics):
                raise ConfigurationError(
                    f"cache values must be ServingMetrics, got {type(value).__name__}"
                )
            self._entries[digest] = value
            if family:
                self._families[digest] = family
            added += 1
        return added

    # -- persistence -------------------------------------------------------------
    @staticmethod
    def _metrics_summary(value: ServingMetrics) -> Dict[str, float]:
        """The human-readable summary persisted (and compared) per entry."""
        return {
            "p99_latency_ms": value.p99_latency_ms,
            "mean_queueing_ms": value.mean_queueing_ms,
            "energy_per_request_mj": value.energy_per_request_mj,
            "throughput_rps": value.throughput_rps,
        }

    @classmethod
    def _record(cls, digest: str, value: ServingMetrics, family: str) -> Dict[str, object]:
        return {
            "version": _PERSIST_VERSION,
            "key": digest,
            "family": family,
            "policy": value.policy,
            "metrics": cls._metrics_summary(value),
            "payload": base64.b64encode(pickle.dumps(value)).decode("ascii"),
        }

    def _append(self, digest: str, value: ServingMetrics, family: str) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # ensure_ascii=False keeps non-ASCII family names readable in the
        # log; the explicit utf-8 handle makes that safe on any locale.
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(
                json.dumps(self._record(digest, value, family), ensure_ascii=False) + "\n"
            )

    def _load(self) -> None:
        """Reload persisted entries, surviving a mid-write crash.

        A process killed while :meth:`_append` is flushing leaves a truncated
        trailing line; foreign tools may leave other malformed lines.  Neither
        aborts the load — every malformed line is skipped and the recovery is
        logged so silent data loss stays visible in the run's logs.
        """
        skipped = 0
        with self.path.open("r", encoding="utf-8") as stream:
            for line in stream:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if record.get("version") != _PERSIST_VERSION:
                        skipped += 1
                        continue
                    digest = record["key"]
                    family = str(record.get("family", ""))
                    value = pickle.loads(base64.b64decode(record["payload"]))
                    if not isinstance(value, ServingMetrics):
                        skipped += 1
                        continue
                except Exception:  # noqa: BLE001 - tolerate truncated/foreign lines
                    skipped += 1
                    continue
                self._entries[digest] = value
                if family:
                    self._families[digest] = family
                self.stats.loaded += 1
        if skipped:
            logger.warning(
                "serving result cache %s: recovered %d entries, skipped %d malformed "
                "or foreign lines (expected after an interrupted write)",
                self.path,
                self.stats.loaded,
                skipped,
            )


@dataclass(frozen=True)
class MeasuredCellStats:
    """Deterministic per-cell cache-efficiency numbers for campaign summaries.

    ``lookups`` counts every measured-objective interrogation of the cell's
    search; ``unique`` counts the distinct replay digests behind them — the
    simulations an isolated, cold cache would have to run.  ``avoided`` is
    their difference: the replays content-keying saved versus no cache at
    all.  Both inputs are pure functions of the cell's (seeded) search
    trajectory, so unlike runtime hit/miss counts — which depend on whether
    the shared cache happened to be warm — they are byte-identical across
    serial, cell-parallel and checkpoint-resumed runs and safe to pin in
    golden summaries.
    """

    lookups: int
    unique: int

    @property
    def avoided(self) -> int:
        return self.lookups - self.unique


class ServingCacheRecorder:
    """Per-cell view of a :class:`ServingResultCache` that counts lookups.

    Wraps the shared (or worker-local) cache for exactly one campaign cell:
    every :meth:`lookup` is tallied together with its digest, stores pass
    straight through.  :meth:`cell_stats` then yields the
    :class:`MeasuredCellStats` attached to that cell's search result.
    """

    def __init__(self, cache: ServingResultCache) -> None:
        self.cache = cache
        self._lookups = 0
        self._digests: set = set()

    def lookup(self, digest: str) -> Optional[ServingMetrics]:
        self._lookups += 1
        self._digests.add(digest)
        return self.cache.lookup(digest)

    def peek(self, digest: str) -> Optional[ServingMetrics]:
        return self.cache.peek(digest)

    def store(self, digest: str, value: ServingMetrics, family: str = "") -> None:
        self.cache.store(digest, value, family)

    def cell_stats(self) -> MeasuredCellStats:
        return MeasuredCellStats(lookups=self._lookups, unique=len(self._digests))
