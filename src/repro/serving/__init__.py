"""Serving under load: a discrete-event traffic simulator for mappings.

The paper evaluates each mapping on isolated samples (Table II); this
subsystem deploys searched Pareto mappings behind per-compute-unit FIFO
queues and plays whole request traces through them -- the second relaxation
of the ideal-input-mapping assumption (after the runtime exit controller),
this time dropping the "one request at a time" idealisation:

* :mod:`repro.serving.workload` -- seedable arrival processes (constant,
  Poisson, bursty on/off, diurnal, multi-tenant),
* :mod:`repro.serving.policies` -- deployments and runtime policies (static,
  hysteresis mapping-switcher, DVFS governor),
* :mod:`repro.serving.simulator` -- the deterministic event loop with the
  threshold exit controller deciding exits per request,
* :mod:`repro.serving.metrics` -- tail latency, throughput, deadline misses,
  utilisation, energy, JSONL trace export,
* :mod:`repro.serving.bridge` -- re-rank ``MapAndConquer.search`` results by
  simulated p99-under-traffic instead of isolated averages, and
  :func:`~repro.serving.bridge.measured_serving_metrics`, the
  simulate-one-deployment primitive behind the measured search objectives,
* :mod:`repro.serving.result_cache` -- :class:`ServingResultCache`, the
  content-keyed JSONL-persistent cache of simulated serving outcomes that
  keeps measured-objective searches within a small factor of proxy cost,
* :mod:`repro.serving.families` -- parameterised workload families (steady
  Poisson, bursty, diurnal, multi-tenant mixes) expanding into seeded member
  scenarios for serving campaigns (:mod:`repro.campaign.serving_runner`),
* :mod:`repro.serving.fleet` -- heterogeneous fleets of instances behind a
  pluggable deterministic router with an autoscaler (boot latency, idle
  power), each instance replaying its sub-stream through the unchanged
  event loop,
* :mod:`repro.serving.fleet_metrics` -- fleet-level pooled tails, dynamic +
  idle joules, utilisation and the byte-deterministic fleet trace.
"""

from .bridge import (
    TrafficRanking,
    measured_serving_metrics,
    rank_under_traffic,
    simulate_deployment,
)
from .fleet import (
    AutoscaleEvent,
    AutoscalerPolicy,
    DeadlineAwareRouter,
    EnergyAwareRouter,
    FleetInstance,
    FleetResult,
    FleetRouter,
    FleetSimulator,
    InstanceOutcome,
    LeastLoadedRouter,
    RoundRobinRouter,
    get_router,
    router_names,
    simulate_fleet,
)
from .fleet_metrics import (
    FleetMetrics,
    FleetRequestRecord,
    compute_fleet_metrics,
    fleet_records,
    write_fleet_trace_jsonl,
)
from .families import (
    DiurnalFamily,
    MultiTenantMixFamily,
    OnOffBurstFamily,
    SteadyPoissonFamily,
    WorkloadFamily,
    default_families,
    family_names,
    family_registry,
    get_family,
    member_traffic_seed,
)
from .metrics import (
    ServingMetrics,
    compute_metrics,
    metric_direction,
    read_trace_jsonl,
    write_trace_jsonl,
)
from .policies import (
    POLICY_KINDS,
    AdaptiveSwitchPolicy,
    Deployment,
    DvfsGovernorPolicy,
    ServingPolicy,
    StaticPolicy,
    build_policy,
    rescale_deployment,
)
from .result_cache import ServingResultCache, deployment_digest, serving_digest
from .simulator import RequestRecord, ServingResult, TrafficSimulator
from .workload import (
    ArrivalProcess,
    ConstantRate,
    DiurnalArrivals,
    MultiTenantStream,
    OnOffBursts,
    PoissonArrivals,
    Request,
)

__all__ = [
    "Request",
    "ArrivalProcess",
    "ConstantRate",
    "PoissonArrivals",
    "OnOffBursts",
    "DiurnalArrivals",
    "MultiTenantStream",
    "Deployment",
    "ServingPolicy",
    "StaticPolicy",
    "AdaptiveSwitchPolicy",
    "DvfsGovernorPolicy",
    "rescale_deployment",
    "POLICY_KINDS",
    "build_policy",
    "ServingResultCache",
    "serving_digest",
    "deployment_digest",
    "measured_serving_metrics",
    "TrafficSimulator",
    "ServingResult",
    "RequestRecord",
    "ServingMetrics",
    "metric_direction",
    "compute_metrics",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "TrafficRanking",
    "simulate_deployment",
    "rank_under_traffic",
    "WorkloadFamily",
    "SteadyPoissonFamily",
    "OnOffBurstFamily",
    "DiurnalFamily",
    "MultiTenantMixFamily",
    "family_registry",
    "family_names",
    "get_family",
    "default_families",
    "member_traffic_seed",
    "FleetInstance",
    "FleetRouter",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "DeadlineAwareRouter",
    "EnergyAwareRouter",
    "router_names",
    "get_router",
    "AutoscalerPolicy",
    "AutoscaleEvent",
    "InstanceOutcome",
    "FleetResult",
    "FleetSimulator",
    "simulate_fleet",
    "FleetRequestRecord",
    "FleetMetrics",
    "fleet_records",
    "compute_fleet_metrics",
    "write_fleet_trace_jsonl",
]
