"""Runtime serving policies: which mapping (and DVFS point) serves a request.

A :class:`Deployment` is the serving-time distillation of one searched
mapping: per-stage service times, energies and exit accuracies on named
compute units.  Policies pick a deployment per request from the live load:

* :class:`StaticPolicy` -- one fixed mapping (the paper's implicit model),
* :class:`AdaptiveSwitchPolicy` -- swaps between two Pareto points when the
  number of in-flight requests crosses hysteresis watermarks (an
  energy-oriented mapping in calm traffic, a latency-oriented one in surges),
* :class:`DvfsGovernorPolicy` -- keeps the mapping but walks a ladder of
  DVFS operating points, built on the existing :class:`~repro.soc.dvfs.DvfsTable`
  and :class:`~repro.soc.dvfs.PowerModel` (race-to-idle under load, slow and
  frugal when the queue drains).

Policies are deliberately state-machine simple so their decisions are
reproducible and unit-testable in isolation from the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..soc.platform import Platform
from ..utils import check_fraction, check_non_negative, check_positive

__all__ = [
    "Deployment",
    "ServingPolicy",
    "StaticPolicy",
    "AdaptiveSwitchPolicy",
    "DvfsGovernorPolicy",
    "rescale_deployment",
    "POLICY_KINDS",
    "build_policy",
]

#: Policy kinds a serving campaign can sweep (`policies=` axis); "static"
#: is the baseline every adaptivity comparison is made against.
POLICY_KINDS = ("static", "switcher", "dvfs-governor")


@dataclass(frozen=True)
class Deployment:
    """One servable mapping: per-stage cost and exit behaviour.

    The fields mirror what :class:`~repro.perf.evaluator.HardwareProfile` and
    the exit statistics provide for a searched configuration; requests
    terminating at stage ``i`` occupy the compute units of stages ``0..i``
    (the concurrent-execution model of Eq. 13) and pay the cumulative energy
    of those stages (Eq. 14).
    """

    name: str
    unit_names: Tuple[str, ...]
    service_ms: Tuple[float, ...]
    energy_mj: Tuple[float, ...]
    stage_accuracies: Tuple[float, ...]
    dvfs_scales: Tuple[float, ...]

    def __post_init__(self) -> None:
        lengths = {
            len(self.unit_names),
            len(self.service_ms),
            len(self.energy_mj),
            len(self.stage_accuracies),
            len(self.dvfs_scales),
        }
        if len(lengths) != 1 or not self.unit_names:
            raise ConfigurationError("per-stage tuples must be non-empty and equal-length")
        for value in self.service_ms:
            check_positive(value, "service_ms")
        for value in self.energy_mj:
            check_positive(value, "energy_mj")
        for value in self.stage_accuracies:
            check_fraction(value, "stage accuracy")
        if any(
            b < a - 1e-9 for a, b in zip(self.stage_accuracies, self.stage_accuracies[1:])
        ):
            raise ConfigurationError("stage accuracies must be non-decreasing")
        for value in self.dvfs_scales:
            check_fraction(value, "dvfs scale", allow_zero=False)

    @property
    def num_stages(self) -> int:
        """Number of inference stages."""
        return len(self.unit_names)

    def cumulative_latency_ms(self, stage: int) -> float:
        """Zero-contention latency when terminating at ``stage`` (Eq. 13)."""
        return max(self.service_ms[: stage + 1])

    def cumulative_energy_mj(self, stage: int) -> float:
        """Energy of instantiating stages up to ``stage`` (Eq. 14)."""
        return float(sum(self.energy_mj[: stage + 1]))

    @property
    def bottleneck_service_ms(self) -> float:
        """Service time of the slowest stage: the capacity bound of the mapping."""
        return max(self.service_ms)

    def capacity_rps(self) -> float:
        """Worst-case sustainable throughput (requests/s) if every request
        instantiated all stages: the bottleneck unit admits one request per
        ``bottleneck_service_ms``."""
        return 1000.0 / self.bottleneck_service_ms

    @property
    def stage_visit_fractions(self) -> Tuple[float, ...]:
        """Fraction of requests instantiating each stage under ideal exits.

        Every request instantiates stage 0; stage ``i`` is only reached by
        requests no earlier exit could classify, i.e. a fraction
        ``1 - stage_accuracies[i - 1]``.
        """
        return (1.0,) + tuple(1.0 - acc for acc in self.stage_accuracies[:-1])

    @property
    def bottleneck_busy_ms(self) -> float:
        """Expected bottleneck occupancy per request under ideal exits.

        Compute unit ``i`` is busy ``service_ms[i]`` only for the fraction of
        requests that actually reach stage ``i``, so the serving bottleneck
        is ``max_i service_ms[i] * visit_fraction[i]`` -- often the *first*
        stage, which every request pays, rather than the slowest one.
        """
        return max(
            service * visit
            for service, visit in zip(self.service_ms, self.stage_visit_fractions)
        )

    def effective_capacity_rps(self, max_wait_ms: Optional[float] = None) -> float:
        """Sustainable throughput accounting for early exits and queueing.

        With ``max_wait_ms=None`` this is the saturation throughput: the
        bottleneck unit admits one request per :attr:`bottleneck_busy_ms`.
        Passing a waiting-time budget instead returns the M/G/1-style
        *headroom* capacity — the highest Poisson arrival rate at which the
        mean queueing delay predicted by :meth:`expected_wait_ms` stays
        within the budget.  With deterministic per-stage service (M/D/1,
        ``W = rho * S / (2 (1 - rho))``) that bound solves to
        ``rho <= 2 W / (S + 2 W)``, so the headroom capacity is the
        saturation capacity scaled by that utilisation cap.  Routers use it
        to estimate how much load an instance can absorb *without running a
        simulator*.
        """
        base = 1000.0 / self.bottleneck_busy_ms
        if max_wait_ms is None:
            return base
        check_positive(max_wait_ms, "max_wait_ms")
        rho_cap = 2.0 * max_wait_ms / (self.bottleneck_busy_ms + 2.0 * max_wait_ms)
        return base * rho_cap

    def expected_wait_ms(self, rate_rps: float) -> float:
        """M/G/1 mean queueing delay at the bottleneck under Poisson arrivals.

        The bottleneck unit sees deterministic service of
        :attr:`bottleneck_busy_ms` per admitted request (early exits folded
        into the visit fraction), so the Pollaczek-Khinchine mean wait
        reduces to the M/D/1 form ``W = rho * S / (2 (1 - rho))`` with
        ``rho = rate * S``.  Returns ``inf`` at or beyond saturation — the
        queue has no steady state there.  This is the cheap queueing
        approximation the fleet routers (and serving-aware selection) use in
        place of a full simulation.
        """
        check_non_negative(rate_rps, "rate_rps")
        busy_ms = self.bottleneck_busy_ms
        rho = rate_rps * busy_ms / 1000.0
        if rho >= 1.0:
            return float("inf")
        return rho * busy_ms / (2.0 * (1.0 - rho))

    @property
    def expected_energy_per_request_mj(self) -> float:
        """Mean energy of one request under ideal exits.

        Stage ``i``'s energy is only paid by the fraction of requests that
        instantiate it, so the expectation is the visit-weighted sum -- the
        number an energy-aware router compares across heterogeneous
        instances.
        """
        return float(
            sum(
                energy * visit
                for energy, visit in zip(self.energy_mj, self.stage_visit_fractions)
            )
        )

    @classmethod
    def from_evaluated(cls, evaluated, name: Optional[str] = None) -> "Deployment":
        """Distil a searched :class:`~repro.search.evaluation.EvaluatedConfig`.

        Accepts anything exposing ``profile`` (a
        :class:`~repro.perf.evaluator.HardwareProfile`) and ``inference``
        (whose exit statistics carry the stage accuracies).
        """
        profile = evaluated.profile
        accuracies = evaluated.inference.exit_statistics.stage_accuracies
        return cls(
            name=name if name is not None else evaluated.config.describe(),
            unit_names=tuple(stage.unit_name for stage in profile.stages),
            service_ms=tuple(stage.latency_ms for stage in profile.stages),
            energy_mj=tuple(stage.energy_mj for stage in profile.stages),
            stage_accuracies=tuple(accuracies),
            dvfs_scales=tuple(stage.dvfs_scale for stage in profile.stages),
        )


def rescale_deployment(
    deployment: Deployment, platform: Platform, target_scale: float
) -> Deployment:
    """Re-derive a deployment at a different DVFS operating point.

    Each stage snaps ``target_scale`` to the nearest point of its unit's
    :class:`~repro.soc.dvfs.DvfsTable`.  Service time scales as
    ``theta_ref / theta`` (the compute-bound model of Eq. 10's surroundings)
    and energy follows the unit's linear :class:`~repro.soc.dvfs.PowerModel`:
    ``E' = E * (theta_ref / theta) * P(theta) / P(theta_ref)``, so the
    profiled numbers are recovered exactly at the reference point.
    """
    check_fraction(target_scale, "target_scale", allow_zero=False)
    services = []
    energies = []
    scales = []
    for unit_name, service, energy, reference_scale in zip(
        deployment.unit_names,
        deployment.service_ms,
        deployment.energy_mj,
        deployment.dvfs_scales,
    ):
        unit = platform.unit(unit_name)
        scale = unit.dvfs.scale(unit.dvfs.nearest_index(target_scale))
        slowdown = reference_scale / scale
        power_ratio = unit.power.power_w(scale) / unit.power.power_w(reference_scale)
        services.append(service * slowdown)
        energies.append(energy * slowdown * power_ratio)
        scales.append(scale)
    return replace(
        deployment,
        name=f"{deployment.name}@theta={target_scale:.2f}",
        service_ms=tuple(services),
        energy_mj=tuple(energies),
        dvfs_scales=tuple(scales),
    )


def build_policy(
    kind: str,
    winner: Deployment,
    platform: Platform,
    front: Tuple[Deployment, ...] = (),
) -> "ServingPolicy":
    """Instantiate one campaign policy kind over a cell's deployed front.

    ``winner`` is the best *static* deployment for the scenario (the member
    ``rank_under_traffic`` selected); ``front`` is the full set of deployed
    front members the adaptive policies may switch between.  Construction is
    a pure function of its arguments, so serial, cell-parallel and resumed
    campaigns build byte-identical policies:

    * ``"static"`` serves every request with ``winner``;
    * ``"switcher"`` hysteresis-switches between the front's most energy
      frugal member (calm) and its highest-capacity member (surge), ties
      broken by deployment name;
    * ``"dvfs-governor"`` walks ``winner`` up and down its platform's DVFS
      ladder with the load.
    """
    if kind == "static":
        return StaticPolicy(winner)
    if kind == "switcher":
        pool = tuple(front) if front else (winner,)
        calm = min(pool, key=lambda d: (d.expected_energy_per_request_mj, d.name))
        surge = min(pool, key=lambda d: (d.bottleneck_busy_ms, d.name))
        return AdaptiveSwitchPolicy(calm, surge)
    if kind == "dvfs-governor":
        return DvfsGovernorPolicy(winner, platform)
    raise ConfigurationError(
        f"unknown policy kind {kind!r}; expected one of {list(POLICY_KINDS)}"
    )


class ServingPolicy:
    """Base class: maps live queue state to the deployment serving a request."""

    name: str = "policy"

    def reset(self) -> None:
        """Clear any hysteresis state before a fresh simulation run."""

    def select(self, queue_depth: int, now_ms: float) -> Deployment:
        """Pick the deployment for a request arriving at ``now_ms`` while
        ``queue_depth`` requests are already in flight."""
        raise NotImplementedError


class StaticPolicy(ServingPolicy):
    """Always serve with one fixed deployment (the paper's implicit model)."""

    def __init__(self, deployment: Deployment, name: Optional[str] = None) -> None:
        self.deployment = deployment
        self.name = name if name is not None else f"static({deployment.name})"

    def select(self, queue_depth: int, now_ms: float) -> Deployment:
        return self.deployment


class AdaptiveSwitchPolicy(ServingPolicy):
    """Hysteresis switch between a calm and a surge deployment.

    While calm, a request arriving with ``queue_depth >= high_watermark``
    flips the policy into surge mode (typically a latency-oriented Pareto
    point); it flips back to the calm (energy-oriented) deployment only once
    the depth has drained to ``low_watermark``.  The dead band between the
    watermarks prevents flapping on every queue oscillation.
    """

    def __init__(
        self,
        calm: Deployment,
        surge: Deployment,
        high_watermark: int = 8,
        low_watermark: int = 2,
        name: Optional[str] = None,
    ) -> None:
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise ConfigurationError(
                f"need high_watermark > low_watermark >= 0, got "
                f"{high_watermark} / {low_watermark}"
            )
        self.calm = calm
        self.surge = surge
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.name = name if name is not None else "adaptive-switch"
        self.switches = 0
        self._surging = False

    def reset(self) -> None:
        self._surging = False
        self.switches = 0

    @property
    def surging(self) -> bool:
        """Whether the policy is currently in surge mode."""
        return self._surging

    def select(self, queue_depth: int, now_ms: float) -> Deployment:
        if not self._surging and queue_depth >= self.high_watermark:
            self._surging = True
            self.switches += 1
        elif self._surging and queue_depth <= self.low_watermark:
            self._surging = False
            self.switches += 1
        return self.surge if self._surging else self.calm


class DvfsGovernorPolicy(ServingPolicy):
    """Load-driven DVFS ladder over one mapping.

    The governor pre-computes the deployment at each rung of ``levels``
    (fractions of maximum frequency, snapped to each unit's
    :class:`~repro.soc.dvfs.DvfsTable`) via :func:`rescale_deployment`.  A
    request seeing ``queue_depth >= high_watermark`` steps the ladder one
    rung up; one seeing ``queue_depth <= low_watermark`` steps it back down
    -- the conservative one-rung-at-a-time walk mirrors interactive CPU
    governors and keeps decisions reproducible.
    """

    def __init__(
        self,
        deployment: Deployment,
        platform: Platform,
        levels: Tuple[float, ...] = (0.4, 0.6, 0.8, 1.0),
        high_watermark: int = 4,
        low_watermark: int = 1,
        name: Optional[str] = None,
    ) -> None:
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise ConfigurationError(
                f"need high_watermark > low_watermark >= 0, got "
                f"{high_watermark} / {low_watermark}"
            )
        if not levels:
            raise ConfigurationError("the governor needs at least one DVFS level")
        ordered = tuple(sorted(check_fraction(f, "level", allow_zero=False) for f in levels))
        self.rungs = tuple(
            rescale_deployment(deployment, platform, fraction) for fraction in ordered
        )
        self.levels = ordered
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.name = name if name is not None else f"dvfs-governor({deployment.name})"
        self._rung = 0

    def reset(self) -> None:
        self._rung = 0

    @property
    def rung(self) -> int:
        """Current ladder position (0 = slowest/frugal rung)."""
        return self._rung

    def select(self, queue_depth: int, now_ms: float) -> Deployment:
        if queue_depth >= self.high_watermark and self._rung < len(self.rungs) - 1:
            self._rung += 1
        elif queue_depth <= self.low_watermark and self._rung > 0:
            self._rung -= 1
        return self.rungs[self._rung]
