"""Fleet-level aggregation: pooled tails, joules (dynamic + idle), utilisation.

:func:`repro.serving.metrics.compute_metrics` judges one instance; a fleet is
judged on the *pooled* request population plus costs no single instance sees:
idle power of boards kept warm for headroom, boot events, dropped requests.
:func:`compute_fleet_metrics` reduces a
:class:`~repro.serving.fleet.FleetResult` to those numbers, checking request
conservation (served + dropped == generated) on the way, and
:func:`write_fleet_trace_jsonl` exports the fleet-wide trace with the same
byte-deterministic formatting as single-instance serving (sorted keys,
shortest round-trip floats), each line carrying the serving instance and the
request's *global* index in the shared stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Tuple

import numpy as np

from ..errors import ConfigurationError
from .simulator import RequestRecord

__all__ = [
    "FleetRequestRecord",
    "FleetMetrics",
    "fleet_records",
    "compute_fleet_metrics",
    "write_fleet_trace_jsonl",
]


@dataclass(frozen=True)
class FleetRequestRecord:
    """One served request of the fleet-wide trace.

    ``index`` is the request's position in the fleet's arrival-sorted stream
    (so traces from different routers align line for line); ``record`` is the
    untouched per-instance trace entry, whose own ``index`` is local to the
    serving instance's sub-stream.
    """

    index: int
    instance: str
    record: RequestRecord

    def to_json_dict(self) -> dict:
        """Flat JSON view: the instance record keyed by the global index."""
        payload = self.record.to_json_dict()
        payload["instance_index"] = payload.pop("index")
        payload["index"] = self.index
        payload["instance"] = self.instance
        return payload


@dataclass(frozen=True)
class FleetMetrics:
    """Distributional behaviour of one fleet run.

    Latency percentiles and accuracy pool every served request across
    instances; energy splits into the dynamic joules the traces account for
    and the idle joules of powered-but-waiting silicon, which is what the
    autoscaler exists to reclaim.  ``mean_in_flight`` sums the per-instance
    time-averaged occupancies over the shared horizon, so fleet-level
    Little's law (``L = lambda * W`` with the pooled mean latency) remains a
    non-trivial consistency check of routing + replay together.
    """

    router: str
    num_instances: int
    num_requests: int
    num_dropped: int
    duration_ms: float
    throughput_rps: float
    drop_rate: float
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    mean_queueing_ms: float
    deadline_miss_rate: float
    accuracy: float
    dynamic_energy_mj: float
    idle_energy_mj: float
    total_energy_mj: float
    energy_per_request_mj: float
    mean_in_flight: float
    mean_active_instances: float
    peak_active_instances: int
    boots: int
    instance_requests: Mapping[str, int] = field(default_factory=dict)
    instance_utilisation: Mapping[str, float] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Served requests; ``0`` marks a fully shedding (degenerate) fleet.

        Mirrors :attr:`repro.serving.metrics.ServingMetrics.completed`: when
        load shedding drops every request the pooled aggregates follow the
        same degenerate convention (latencies/energy-per-request ``inf``,
        accuracy 0) and such mixes rank strictly last instead of raising.
        """
        return int(self.num_requests)

    def summary_row(self) -> dict:
        """Flat dictionary for :func:`repro.core.report.format_table`."""
        return {
            "router": self.router,
            "instances": self.num_instances,
            "requests": self.num_requests,
            "drop_%": 100.0 * self.drop_rate,
            "rps": self.throughput_rps,
            "p50_ms": self.p50_latency_ms,
            "p99_ms": self.p99_latency_ms,
            "miss_%": 100.0 * self.deadline_miss_rate,
            "acc_%": 100.0 * self.accuracy,
            "J_total": self.total_energy_mj / 1000.0,
            "mJ/req": self.energy_per_request_mj,
            "mean_active": self.mean_active_instances,
        }


def fleet_records(result) -> Tuple[FleetRequestRecord, ...]:
    """Fleet-wide request records, sorted by global (stream) index.

    Raises :class:`~repro.errors.ConfigurationError` when the fleet result
    violates request conservation — a request assigned to an instance whose
    replay produced no trace entry for it, or duplicated across instances —
    which would mean the routing pass and the replay pass disagree.
    """
    merged = {}
    for outcome in result.outcomes:
        records = outcome.result.records if outcome.result is not None else ()
        if len(records) != len(outcome.assigned):
            raise ConfigurationError(
                f"instance {outcome.instance.name!r} was assigned "
                f"{len(outcome.assigned)} requests but replayed {len(records)}"
            )
        for record in records:
            global_index = outcome.assigned[record.index]
            if global_index in merged:
                raise ConfigurationError(
                    f"request {global_index} served by more than one instance"
                )
            merged[global_index] = FleetRequestRecord(
                index=global_index, instance=outcome.instance.name, record=record
            )
    expected = len(result.requests) - len(result.dropped)
    if len(merged) != expected:
        raise ConfigurationError(
            f"request conservation violated: {len(result.requests)} generated, "
            f"{len(result.dropped)} dropped, but {len(merged)} served"
        )
    return tuple(merged[index] for index in sorted(merged))


def _mean_peak_active(result) -> Tuple[float, int]:
    """Time-average and peak of the powered-instance count over the horizon."""
    active = result.initial_active
    peak = active
    area = 0.0
    last_ms = 0.0
    for event in result.events:
        area += active * (event.time_ms - last_ms)
        last_ms = event.time_ms
        active = event.active
        peak = max(peak, active)
    area += active * (result.duration_ms - last_ms)
    mean = area / result.duration_ms if result.duration_ms > 0 else 0.0
    return mean, peak


def _degenerate_fleet_metrics(result) -> FleetMetrics:
    """The zero-served aggregate: every request shed, nothing to pool.

    Same convention as :meth:`repro.serving.metrics.ServingMetrics.degenerate`
    — ``inf`` on every ascending latency/energy-per-request axis, accuracy 0,
    miss rate 1 — but the system-side numbers (idle joules of warm silicon,
    drop rate, active-instance statistics, boots) are still real and kept,
    because an overloaded fleet that sheds everything *does* burn idle power.
    """
    idle_mj = float(sum(outcome.idle_energy_mj() for outcome in result.outcomes))
    mean_active, peak_active = _mean_peak_active(result)
    generated = len(result.requests)
    return FleetMetrics(
        router=result.router,
        num_instances=len(result.outcomes),
        num_requests=0,
        num_dropped=result.num_dropped,
        duration_ms=result.duration_ms,
        throughput_rps=0.0,
        drop_rate=result.num_dropped / generated if generated else 0.0,
        mean_latency_ms=float("inf"),
        p50_latency_ms=float("inf"),
        p95_latency_ms=float("inf"),
        p99_latency_ms=float("inf"),
        max_latency_ms=float("inf"),
        mean_queueing_ms=float("inf"),
        deadline_miss_rate=1.0,
        accuracy=0.0,
        dynamic_energy_mj=0.0,
        idle_energy_mj=idle_mj,
        total_energy_mj=idle_mj,
        energy_per_request_mj=float("inf"),
        mean_in_flight=0.0,
        mean_active_instances=mean_active,
        peak_active_instances=int(peak_active),
        boots=sum(outcome.boots for outcome in result.outcomes),
        instance_requests={
            outcome.instance.name: outcome.num_requests for outcome in result.outcomes
        },
        instance_utilisation={
            outcome.instance.name: outcome.utilisation() for outcome in result.outcomes
        },
    )


def compute_fleet_metrics(result) -> FleetMetrics:
    """Reduce a :class:`~repro.serving.fleet.FleetResult` to fleet aggregates."""
    pooled = fleet_records(result)
    if not pooled:
        return _degenerate_fleet_metrics(result)
    records = [entry.record for entry in pooled]
    latencies = np.sort(np.array([record.latency_ms for record in records]))
    queueing = np.array([record.queueing_ms for record in records])
    energies = np.array([record.energy_mj for record in records])
    correct = np.array([record.correct for record in records])
    with_deadline = [record for record in records if record.deadline_ms is not None]
    missed = sum(1 for record in with_deadline if record.deadline_missed)

    duration_ms = result.duration_ms
    duration_s = duration_ms / 1000.0
    dynamic_mj = float(energies.sum())
    idle_mj = float(sum(outcome.idle_energy_mj() for outcome in result.outcomes))
    total_mj = dynamic_mj + idle_mj
    in_flight_area = sum(
        outcome.result.mean_in_flight * outcome.result.duration_ms
        for outcome in result.outcomes
        if outcome.result is not None
    )
    mean_active, peak_active = _mean_peak_active(result)
    generated = len(result.requests)
    return FleetMetrics(
        router=result.router,
        num_instances=len(result.outcomes),
        num_requests=len(records),
        num_dropped=result.num_dropped,
        duration_ms=duration_ms,
        throughput_rps=len(records) / duration_s if duration_s > 0 else 0.0,
        drop_rate=result.num_dropped / generated if generated else 0.0,
        mean_latency_ms=float(latencies.mean()),
        p50_latency_ms=float(np.percentile(latencies, 50.0)),
        p95_latency_ms=float(np.percentile(latencies, 95.0)),
        p99_latency_ms=float(np.percentile(latencies, 99.0)),
        max_latency_ms=float(latencies[-1]),
        mean_queueing_ms=float(queueing.mean()),
        deadline_miss_rate=missed / len(with_deadline) if with_deadline else 0.0,
        accuracy=float(correct.mean()),
        dynamic_energy_mj=dynamic_mj,
        idle_energy_mj=idle_mj,
        total_energy_mj=total_mj,
        energy_per_request_mj=total_mj / len(records),
        mean_in_flight=in_flight_area / duration_ms if duration_ms > 0 else 0.0,
        mean_active_instances=mean_active,
        peak_active_instances=int(peak_active),
        boots=sum(outcome.boots for outcome in result.outcomes),
        instance_requests={
            outcome.instance.name: outcome.num_requests for outcome in result.outcomes
        },
        instance_utilisation={
            outcome.instance.name: outcome.utilisation() for outcome in result.outcomes
        },
    )


def write_fleet_trace_jsonl(records: Iterable[FleetRequestRecord], path) -> Path:
    """Write one JSON object per served fleet request to ``path``.

    Same guarantees as :func:`repro.serving.metrics.write_trace_jsonl`: sorted
    keys and shortest round-trip floats, so a seeded fleet run always writes
    a byte-identical file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for entry in records:
            handle.write(
                json.dumps(entry.to_json_dict(), sort_keys=True, separators=(",", ":"))
            )
            handle.write("\n")
    return target
