"""Bridge between the mapping search and the traffic simulator.

The search engine ranks configurations by isolated average-case latency and
energy (Eq. 16); under real traffic the right ranking can differ — a mapping
whose bottleneck stage saturates first queues earlier and blows up its tail
latency long before its *average* degrades.  :func:`rank_under_traffic`
replays one seeded scenario against every candidate (same arrivals, same
difficulty stream) and re-ranks by a simulated serving metric such as
p99-under-load, so ``MapAndConquer.search`` results can be deployed on
distributional evidence instead of per-sample expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dynamics.controller import ThresholdExitController
from ..errors import ConfigurationError
from ..soc.platform import Platform
from .metrics import ServingMetrics, compute_metrics, metric_direction
from .policies import Deployment, ServingPolicy, StaticPolicy
from .result_cache import ServingResultCache, serving_digest
from .simulator import ServingResult, TrafficSimulator
from .workload import ArrivalProcess, Request

__all__ = [
    "TrafficRanking",
    "simulate_deployment",
    "measured_serving_metrics",
    "rank_under_traffic",
]


@dataclass(frozen=True)
class TrafficRanking:
    """One candidate's simulated serving behaviour under the shared scenario."""

    candidate: object
    deployment: Deployment
    result: ServingResult
    metrics: ServingMetrics

    def score(self, metric: str) -> float:
        """Value of ``metric`` for this candidate.

        Only metrics with a declared sort direction are accepted; a typo or a
        direction-less field raises :class:`~repro.errors.ConfigurationError`.
        """
        metric_direction(metric)
        return float(getattr(self.metrics, metric))


def _resolve_requests(
    workload: Union[ArrivalProcess, Sequence[Request]],
    duration_ms: Optional[float],
    seed,
) -> Tuple[Request, ...]:
    if isinstance(workload, ArrivalProcess):
        if duration_ms is None:
            raise ConfigurationError(
                "duration_ms is required when passing an ArrivalProcess"
            )
        return workload.generate(duration_ms, seed=seed)
    requests = tuple(workload)
    if not requests:
        raise ConfigurationError("the request stream is empty")
    return requests


def simulate_deployment(
    candidate,
    platform: Platform,
    workload: Union[ArrivalProcess, Sequence[Request]],
    duration_ms: Optional[float] = None,
    policy: Optional[ServingPolicy] = None,
    controller: Optional[ThresholdExitController] = None,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: Optional[str] = None,
) -> ServingResult:
    """Simulate one searched mapping (or ready deployment) under traffic.

    ``candidate`` may be an :class:`~repro.search.evaluation.EvaluatedConfig`
    (distilled via :meth:`Deployment.from_evaluated`), a
    :class:`~repro.serving.policies.Deployment`, or omitted implicitly by
    passing a ``policy`` that already carries its deployments.
    """
    if policy is None:
        deployment = (
            candidate
            if isinstance(candidate, Deployment)
            else Deployment.from_evaluated(candidate, name=name)
        )
        policy = StaticPolicy(deployment)
    simulator = TrafficSimulator(
        platform=platform,
        policy=policy,
        controller=controller,
        seed=_simulation_seed(seed),
        deadline_ms=deadline_ms,
    )
    requests = _resolve_requests(workload, duration_ms, seed)
    return simulator.run(requests, duration_ms=duration_ms)


def measured_serving_metrics(
    candidate,
    platform: Platform,
    workload: Union[ArrivalProcess, Sequence[Request]],
    duration_ms: float,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    cache: Optional[ServingResultCache] = None,
    family_name: str = "",
    name: Optional[str] = None,
    policy: Optional[ServingPolicy] = None,
    policy_tag: str = "static",
) -> ServingMetrics:
    """Measured serving behaviour of one candidate, simulated at most once.

    The cache-aware entry point behind ``measured_serving_objectives`` and
    the measured campaign replays: the candidate is distilled into a
    :class:`~repro.serving.policies.Deployment`, keyed by
    :func:`~repro.serving.result_cache.serving_digest` (deployment content x
    platform x workload x seed x replay budget x ``policy_tag``) and only
    simulated on a cache miss.  NSGA-II's pairwise domination checks
    interrogate the same candidates many times per generation; with a shared
    :class:`~repro.serving.result_cache.ServingResultCache` each distinct
    deployment pays for exactly one replay — and serving-campaign replays of
    deployments the search already measured pay for none.

    ``policy`` replays an adaptive :class:`~repro.serving.policies.ServingPolicy`
    (switcher, DVFS governor) instead of pinning the candidate statically; the
    caller must then pass a ``policy_tag`` that identifies the policy *and*
    the deployment set it switches over, since the digest still keys on the
    anchor ``candidate``.
    """
    deployment = (
        candidate
        if isinstance(candidate, Deployment)
        else Deployment.from_evaluated(candidate, name=name)
    )
    digest = None
    if cache is not None:
        digest = serving_digest(
            deployment,
            platform,
            workload,
            duration_ms,
            seed,
            deadline_ms=deadline_ms,
            policy_tag=policy_tag,
        )
        hit = cache.lookup(digest)
        if hit is not None:
            return hit
    result = simulate_deployment(
        deployment if policy is None else None,
        platform,
        workload,
        duration_ms,
        policy=policy,
        seed=seed,
        deadline_ms=deadline_ms,
    )
    metrics = compute_metrics(result)
    if cache is not None:
        cache.store(digest, metrics, family=family_name)
    return metrics


def rank_under_traffic(
    candidates: Sequence,
    platform: Platform,
    workload: Union[ArrivalProcess, Sequence[Request]],
    duration_ms: Optional[float] = None,
    metric: str = "p99_latency_ms",
    controller: Optional[ThresholdExitController] = None,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
) -> List[TrafficRanking]:
    """Re-rank searched mappings by a simulated serving metric.

    Every candidate faces the *same* request stream (arrivals are generated
    once from ``seed``) and the same per-request difficulty/noise stream (the
    simulator is re-seeded identically per candidate), so differences in the
    chosen ``metric`` are attributable to the mappings alone.  Returns
    rankings sorted best-first.
    """
    if not candidates:
        raise ConfigurationError("rank_under_traffic needs at least one candidate")
    # Resolve the declared sort direction up front: unknown or direction-less
    # metric names fail here, before any simulation work.
    reverse = metric_direction(metric) == "desc"
    requests = _resolve_requests(workload, duration_ms, seed)
    rankings = []
    for position, candidate in enumerate(candidates):
        deployment = (
            candidate
            if isinstance(candidate, Deployment)
            else Deployment.from_evaluated(candidate, name=f"pareto-{position}")
        )
        simulator = TrafficSimulator(
            platform=platform,
            policy=StaticPolicy(deployment),
            controller=controller,
            seed=_simulation_seed(seed),
            deadline_ms=deadline_ms,
        )
        result = simulator.run(requests, duration_ms=duration_ms)
        rankings.append(
            TrafficRanking(
                candidate=candidate,
                deployment=deployment,
                result=result,
                metrics=compute_metrics(result),
            )
        )
    rankings.sort(key=lambda ranking: ranking.score(metric), reverse=reverse)
    return rankings


def _simulation_seed(seed: int) -> np.random.Generator:
    """Decorrelate the simulator's stream from the workload's arrival stream."""
    return np.random.default_rng(np.random.SeedSequence([int(seed), 0x5E57]))
