"""Deterministic discrete-event simulation of mappings under traffic.

This is the second relaxation of the paper's ideal-input-mapping assumption.
The first (:mod:`repro.dynamics.controller`) admitted that a deployed system
does not know a priori how many stages a sample needs; this module admits
that requests *contend*: every compute unit serves a FIFO queue, so the
latency a user sees is queueing delay plus service, not the isolated
per-sample makespan of Table II.

Execution model
---------------
A request admitted at time ``t`` is assigned a deployment by the serving
policy (from the live queue depth) and an exit stage by the
:class:`~repro.dynamics.controller.ThresholdExitController` (from its latent
difficulty).  Under the paper's concurrent-execution model the instantiated
stages ``S_1 .. S_i`` run in parallel on their (distinct) compute units, so
the request enqueues one task per instantiated stage at admission; each task
occupies its unit's FIFO queue for the stage's service time, and the request
completes when its last task does.  At zero contention this reproduces
Eq. 13/14 exactly: latency ``max_{k<=i} T_{S_k}``, energy ``E_{S_{1:i}}``.

Determinism: identical seed + scenario + policy replays the identical event
sequence; the exported JSONL trace is byte-identical across runs.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dynamics.controller import ThresholdExitController
from ..errors import ConfigurationError
from ..soc.platform import Platform
from ..utils import as_rng, check_positive
from .policies import ServingPolicy
from .workload import Request

__all__ = ["RequestRecord", "ServingResult", "TrafficSimulator"]


@dataclass(frozen=True)
class RequestRecord:
    """Trace entry for one completed request."""

    index: int
    tenant: str
    arrival_ms: float
    completion_ms: float
    latency_ms: float
    service_ms: float
    queueing_ms: float
    exit_stage: int
    num_stages: int
    deployment: str
    correct: bool
    energy_mj: float
    deadline_ms: Optional[float]
    deadline_missed: bool

    def to_json_dict(self) -> dict:
        """Flat JSON-serialisable view used by the JSONL trace export."""
        return {
            "index": self.index,
            "tenant": self.tenant,
            "arrival_ms": self.arrival_ms,
            "completion_ms": self.completion_ms,
            "latency_ms": self.latency_ms,
            "service_ms": self.service_ms,
            "queueing_ms": self.queueing_ms,
            "exit_stage": self.exit_stage,
            "num_stages": self.num_stages,
            "deployment": self.deployment,
            "correct": self.correct,
            "energy_mj": self.energy_mj,
            "deadline_ms": self.deadline_ms,
            "deadline_missed": self.deadline_missed,
        }


@dataclass(frozen=True)
class ServingResult:
    """Everything one simulation run produced.

    ``busy_ms`` maps compute-unit names to total occupied time;
    ``mean_in_flight`` is the time-averaged number of requests in the system
    (measured independently of per-request latencies, so Little's law
    ``L = lambda * W`` is a non-trivial consistency check of the event loop).
    """

    policy: str
    records: Tuple[RequestRecord, ...]
    duration_ms: float
    busy_ms: Mapping[str, float]
    mean_in_flight: float
    peak_in_flight: int

    @property
    def num_requests(self) -> int:
        """Number of completed requests."""
        return len(self.records)

    def metrics(self):
        """Aggregate percentile/throughput/energy metrics for this run."""
        from .metrics import compute_metrics

        return compute_metrics(self)

    def write_trace(self, path) -> None:
        """Export the per-request trace as JSON lines (byte-deterministic)."""
        from .metrics import write_trace_jsonl

        write_trace_jsonl(self.records, path)


@dataclass
class _Task:
    """One stage of one in-flight request, queued on a compute unit."""

    state: "_RequestState"
    stage: int
    service_ms: float


@dataclass
class _RequestState:
    """Mutable bookkeeping of one admitted request."""

    index: int
    request: Request
    deployment_name: str
    exit_stage: int
    correct: bool
    energy_mj: float
    critical_service_ms: float
    remaining_tasks: int
    completion_ms: float = 0.0


class TrafficSimulator:
    """Seedable discrete-event simulator of one platform under a policy.

    Parameters
    ----------
    platform:
        The MPSoC; deployments returned by the policy must only name its
        compute units.
    policy:
        Serving policy choosing a deployment per request
        (:mod:`repro.serving.policies`).
    controller:
        Runtime exit controller; ``None`` uses a noise-free
        :class:`~repro.dynamics.controller.ThresholdExitController`, which
        reproduces the paper's ideal exit behaviour in expectation.
    seed:
        Seed of the per-request difficulty and confidence-noise draws.
    deadline_ms:
        Default relative deadline applied to requests that do not carry one;
        ``None`` disables deadline accounting for those requests.
    stratified_difficulty:
        Draw request difficulties from a seeded permutation of an evenly
        spaced grid instead of i.i.d. uniforms.  This variance reduction
        makes the empirical exit fractions match the ideal analysis almost
        exactly at any trace length (used by the zero-load consistency
        checks); set ``False`` for fully independent requests.
    """

    def __init__(
        self,
        platform: Platform,
        policy: ServingPolicy,
        controller: Optional[ThresholdExitController] = None,
        seed: "int | np.random.Generator | None" = 0,
        deadline_ms: Optional[float] = None,
        stratified_difficulty: bool = True,
    ) -> None:
        self.platform = platform
        self.policy = policy
        self.controller = (
            controller
            if controller is not None
            else ThresholdExitController(threshold=0.5, confidence_noise=0.0, seed=0)
        )
        self._seed = seed
        if deadline_ms is not None:
            check_positive(deadline_ms, "deadline_ms")
        self.deadline_ms = deadline_ms
        self.stratified_difficulty = bool(stratified_difficulty)

    def run(
        self,
        requests: Sequence[Request],
        duration_ms: Optional[float] = None,
    ) -> ServingResult:
        """Play ``requests`` through the platform and return the full trace.

        Parameters
        ----------
        requests:
            The request stream (any order; sorted by arrival internally).
        duration_ms:
            Observation window used for throughput/utilisation
            normalisation; defaults to the last completion time.
        """
        if not requests:
            raise ConfigurationError("cannot simulate an empty request stream")
        rng = as_rng(self._seed)
        ordered = sorted(requests, key=lambda r: r.arrival_ms)
        difficulties = self._draw_difficulties(rng, len(ordered))
        self.policy.reset()

        unit_names = self.platform.unit_names
        # Policies hand back the same few Deployment objects for the whole
        # run; validate each distinct one once instead of per arrival.  Keyed
        # by id with the object kept referenced, so a freed id can't alias.
        validated_deployments: Dict[int, object] = {}
        queues: Dict[str, deque] = {name: deque() for name in unit_names}
        busy: Dict[str, bool] = {name: False for name in unit_names}
        busy_ms: Dict[str, float] = {name: 0.0 for name in unit_names}

        # Event heap entries: (time_ms, sequence, kind, payload).  Arrivals are
        # pre-seeded with the lowest sequence numbers so simultaneous
        # arrival/completion ties resolve deterministically (arrival first).
        events: list = []
        for seq, request in enumerate(ordered):
            heapq.heappush(events, (request.arrival_ms, seq, "arrival", seq))
        next_seq = len(ordered)

        in_flight = 0
        peak_in_flight = 0
        in_flight_area = 0.0
        last_event_ms = 0.0
        records: list = []

        def start_task(unit: str, task: _Task, now: float) -> None:
            nonlocal next_seq
            busy[unit] = True
            busy_ms[unit] += task.service_ms
            heapq.heappush(events, (now + task.service_ms, next_seq, "done", (unit, task)))
            next_seq += 1

        while events:
            now, _, kind, payload = heapq.heappop(events)
            in_flight_area += in_flight * (now - last_event_ms)
            last_event_ms = now

            if kind == "arrival":
                request_index = payload
                request = ordered[request_index]
                deployment = self.policy.select(in_flight, now)
                if id(deployment) not in validated_deployments:
                    self._check_deployment_units(deployment)
                    validated_deployments[id(deployment)] = deployment
                decision = self.controller.decide(
                    difficulties[request_index], deployment.stage_accuracies, rng=rng
                )
                state = _RequestState(
                    index=request_index,
                    request=request,
                    deployment_name=deployment.name,
                    exit_stage=decision.stage,
                    correct=decision.correct,
                    energy_mj=deployment.cumulative_energy_mj(decision.stage),
                    critical_service_ms=deployment.cumulative_latency_ms(decision.stage),
                    remaining_tasks=decision.stage + 1,
                )
                in_flight += 1
                peak_in_flight = max(peak_in_flight, in_flight)
                for stage in range(decision.stage + 1):
                    unit = deployment.unit_names[stage]
                    task = _Task(state=state, stage=stage, service_ms=deployment.service_ms[stage])
                    if busy[unit]:
                        queues[unit].append(task)
                    else:
                        start_task(unit, task, now)
            else:  # "done"
                unit, task = payload
                state = task.state
                state.remaining_tasks -= 1
                state.completion_ms = max(state.completion_ms, now)
                if state.remaining_tasks == 0:
                    in_flight -= 1
                    records.append(self._finish(state))
                if queues[unit]:
                    start_task(unit, queues[unit].popleft(), now)
                else:
                    busy[unit] = False

        makespan = last_event_ms
        horizon = makespan if duration_ms is None else max(float(duration_ms), makespan)
        mean_in_flight = in_flight_area / horizon if horizon > 0 else 0.0
        records.sort(key=lambda record: record.index)
        return ServingResult(
            policy=self.policy.name,
            records=tuple(records),
            duration_ms=horizon,
            busy_ms=dict(busy_ms),
            mean_in_flight=mean_in_flight,
            peak_in_flight=peak_in_flight,
        )

    # -- internals ---------------------------------------------------------------
    def _draw_difficulties(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if self.stratified_difficulty:
            grid = (np.arange(count) + 0.5) / count
            return rng.permutation(grid)
        return rng.random(count)

    def _check_deployment_units(self, deployment) -> None:
        for name in deployment.unit_names:
            if name not in self.platform.unit_names:
                raise ConfigurationError(
                    f"deployment {deployment.name!r} maps a stage to unknown "
                    f"compute unit {name!r} on platform {self.platform.name!r}"
                )

    def _finish(self, state: _RequestState) -> RequestRecord:
        latency = state.completion_ms - state.request.arrival_ms
        deadline = (
            state.request.deadline_ms
            if state.request.deadline_ms is not None
            else self.deadline_ms
        )
        return RequestRecord(
            index=state.index,
            tenant=state.request.tenant,
            arrival_ms=state.request.arrival_ms,
            completion_ms=state.completion_ms,
            latency_ms=latency,
            service_ms=state.critical_service_ms,
            queueing_ms=latency - state.critical_service_ms,
            exit_stage=state.exit_stage,
            num_stages=state.exit_stage + 1,
            deployment=state.deployment_name,
            correct=state.correct,
            energy_mj=state.energy_mj,
            deadline_ms=deadline,
            deadline_missed=deadline is not None and latency > deadline,
        )
