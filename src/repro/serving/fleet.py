"""Fleet-scale serving: heterogeneous instances behind a router + autoscaler.

One :class:`~repro.serving.simulator.TrafficSimulator` deploys one mapping on
one board; a production service runs a *fleet* — N instances across mixed zoo
platforms, each serving its own :class:`~repro.serving.policies.Deployment`
drawn from that platform's Pareto front.  This module simulates such fleets
deterministically while reusing the per-CU FIFO event loop unchanged:

1. **Routing pass** — the shared request stream (one seeded
   :class:`~repro.serving.workload.ArrivalProcess`) is walked in arrival
   order.  A pluggable :class:`FleetRouter` assigns every request to one
   *ready* instance using a fluid-backlog view of per-instance load (the
   M/G/1-style :meth:`~repro.serving.policies.Deployment.effective_capacity_rps`
   headroom estimate — no inner simulation), while an optional
   :class:`AutoscalerPolicy` boots instances up (paying a boot latency) and
   spins them down (saving their idle power) as the observed arrival rate
   swings.
2. **Replay pass** — each instance's assigned sub-stream is played through
   its own :class:`TrafficSimulator` (same per-request difficulty seed
   derivation as :func:`repro.serving.bridge.simulate_deployment`), so a
   fleet of one instance behind a round-robin router reproduces
   single-instance serving byte for byte.

Everything is seed-deterministic: routing consumes no randomness beyond the
request stream itself, and per-instance replays derive their seeds from
values only, so serial and cell-parallel fleet campaigns agree bit for bit.

Request conservation holds by construction: every generated request is
assigned to exactly one instance or dropped (load shedding / no ready
instance) exactly once — :func:`repro.serving.fleet_metrics.compute_fleet_metrics`
and the fleet invariants test suite check it end to end.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dynamics.controller import ThresholdExitController
from ..errors import ConfigurationError
from ..soc.platform import Platform
from ..utils import check_fraction, check_positive
from .policies import Deployment, StaticPolicy
from .simulator import ServingResult, TrafficSimulator
from .workload import ArrivalProcess, Request

__all__ = [
    "FleetInstance",
    "FleetRouter",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "DeadlineAwareRouter",
    "EnergyAwareRouter",
    "router_names",
    "get_router",
    "AutoscalerPolicy",
    "AutoscaleEvent",
    "InstanceOutcome",
    "FleetResult",
    "FleetSimulator",
    "simulate_fleet",
]


@dataclass(frozen=True)
class FleetInstance:
    """One servable instance: a deployment pinned to a platform.

    ``boot_ms`` is the cold-start latency the autoscaler pays before the
    instance can take traffic; ``idle_power_w`` is the static draw of the
    powered board (``None`` derives it from the platform: the sum of every
    compute unit's static power, the floor the linear Eq. 10 model charges
    whenever silicon is on).
    """

    name: str
    platform: Platform
    deployment: Deployment
    boot_ms: float = 250.0
    idle_power_w: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("instance name must be non-empty")
        check_positive(self.boot_ms, "boot_ms")
        if self.idle_power_w is not None:
            check_positive(self.idle_power_w, "idle_power_w")
        for unit_name in self.deployment.unit_names:
            if unit_name not in self.platform.unit_names:
                raise ConfigurationError(
                    f"instance {self.name!r}: deployment {self.deployment.name!r} maps "
                    f"a stage to unknown compute unit {unit_name!r} on platform "
                    f"{self.platform.name!r}"
                )

    @property
    def static_power_by_unit(self) -> Dict[str, float]:
        """Static draw (watts) of each compute unit while powered."""
        return {
            unit.name: unit.power.static_w for unit in self.platform.compute_units
        }

    def resolved_idle_power_w(self) -> float:
        """Idle draw of the whole powered instance (watts)."""
        if self.idle_power_w is not None:
            return self.idle_power_w
        return float(sum(self.static_power_by_unit.values()))


class _RoutingView:
    """What a router may observe: per-instance fluid load and cost estimates.

    ``backlog_ms[i]`` is the estimated bottleneck work queued on instance
    ``i`` (each routed request adds its deployment's expected bottleneck
    occupancy; the backlog drains in real time) — a deterministic fluid
    stand-in for live queue depth that needs no inner simulation.
    """

    def __init__(self, instances: Sequence[FleetInstance], deadline_ms: Optional[float]):
        self.instances = tuple(instances)
        self.default_deadline_ms = deadline_ms
        self.busy_ms = tuple(
            instance.deployment.bottleneck_busy_ms for instance in self.instances
        )
        self.zero_load_latency_ms = tuple(
            instance.deployment.cumulative_latency_ms(instance.deployment.num_stages - 1)
            for instance in self.instances
        )
        self.energy_per_request_mj = tuple(
            instance.deployment.expected_energy_per_request_mj
            for instance in self.instances
        )
        self.backlog_ms = [0.0 for _ in self.instances]
        self._last_ms = 0.0

    def advance(self, now_ms: float) -> None:
        elapsed = now_ms - self._last_ms
        if elapsed > 0.0:
            self.backlog_ms = [max(0.0, backlog - elapsed) for backlog in self.backlog_ms]
            self._last_ms = now_ms

    def assign(self, index: int) -> None:
        self.backlog_ms[index] += self.busy_ms[index]

    def estimated_wait_ms(self, index: int) -> float:
        """Backlog plus one service: when a request routed now would finish."""
        return self.backlog_ms[index] + self.busy_ms[index]


class FleetRouter:
    """Base class: assigns each arriving request to one ready instance.

    Routers are deterministic state machines over the routing view — no
    randomness — so the same seed (hence the same request stream) always
    yields the same per-instance assignment, serially or inside campaign
    worker processes.
    """

    name: str = "router"

    def reset(self) -> None:
        """Clear any cursor/state before a fresh fleet run."""

    def route(
        self,
        request: Request,
        now_ms: float,
        ready: Sequence[int],
        view: _RoutingView,
    ) -> int:
        """Index (into the fleet's instance list) serving ``request``."""
        raise NotImplementedError


class RoundRobinRouter(FleetRouter):
    """Cycle through the ready instances in fleet order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def route(self, request, now_ms, ready, view) -> int:
        choice = ready[self._cursor % len(ready)]
        self._cursor += 1
        return choice


class LeastLoadedRouter(FleetRouter):
    """Send the request where it is estimated to finish queueing soonest.

    Headroom is judged from the fluid backlog plus one expected service, so a
    fast-but-busy instance loses to an idle slower one exactly when queueing
    says it should; ties break on fleet order.
    """

    name = "least-loaded"

    def route(self, request, now_ms, ready, view) -> int:
        return min(ready, key=lambda index: (view.estimated_wait_ms(index), index))


class DeadlineAwareRouter(FleetRouter):
    """Meet the deadline first, then spend as little energy as possible.

    The estimated completion of routing to instance ``i`` is its backlog plus
    the deployment's zero-load critical-path latency.  Among instances
    estimated to meet the request's deadline, the most energy-frugal wins;
    when none can, the earliest-finishing one takes the request (minimising
    the overshoot).  Requests without a deadline fall back to least-loaded
    behaviour.
    """

    name = "deadline-aware"

    def route(self, request, now_ms, ready, view) -> int:
        deadline = (
            request.deadline_ms
            if request.deadline_ms is not None
            else view.default_deadline_ms
        )

        def completion(index: int) -> float:
            return view.backlog_ms[index] + view.zero_load_latency_ms[index]

        if deadline is None:
            return min(ready, key=lambda index: (view.estimated_wait_ms(index), index))
        meeting = [index for index in ready if completion(index) <= deadline]
        if meeting:
            return min(meeting, key=lambda index: (view.energy_per_request_mj[index], index))
        return min(ready, key=lambda index: (completion(index), index))


class EnergyAwareRouter(FleetRouter):
    """Prefer the cheapest joules-per-request instance that still has headroom.

    An instance has headroom while its estimated backlog stays below
    ``max_backlog_requests`` expected services — i.e. while the M/G/1 view
    says its queue is short.  Among instances with headroom the lowest
    expected energy per request wins; when every ready instance is saturated
    the router degrades to least-loaded, trading joules for tail latency
    exactly when it must.
    """

    name = "energy-aware"

    def __init__(self, max_backlog_requests: float = 4.0) -> None:
        check_positive(max_backlog_requests, "max_backlog_requests")
        self.max_backlog_requests = float(max_backlog_requests)

    def route(self, request, now_ms, ready, view) -> int:
        with_headroom = [
            index
            for index in ready
            if view.backlog_ms[index] <= self.max_backlog_requests * view.busy_ms[index]
        ]
        if with_headroom:
            return min(
                with_headroom, key=lambda index: (view.energy_per_request_mj[index], index)
            )
        return min(ready, key=lambda index: (view.estimated_wait_ms(index), index))


#: The router registry: canonical name -> zero-argument factory.
_ROUTERS: Dict[str, Callable[[], FleetRouter]] = {
    "round-robin": RoundRobinRouter,
    "least-loaded": LeastLoadedRouter,
    "deadline-aware": DeadlineAwareRouter,
    "energy-aware": EnergyAwareRouter,
}


def router_names() -> Tuple[str, ...]:
    """Canonical names of every registered router, sorted."""
    return tuple(sorted(_ROUTERS))


def get_router(name: str) -> FleetRouter:
    """Build the registered router called ``name`` (case/separator-insensitive,
    exactly like :func:`repro.soc.presets.get_platform`)."""
    canonical = name.strip().lower().replace("_", "-").replace(" ", "-")
    factory = _ROUTERS.get(canonical)
    if factory is None:
        raise ConfigurationError(
            f"unknown fleet router {name!r}; registered routers: {list(router_names())}"
        )
    return factory()


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Reactive rate-based scaling of the powered instance set.

    Every ``decision_interval_ms`` the autoscaler compares the arrival rate
    observed over the trailing ``window_ms`` against the powered fleet's
    aggregate :meth:`~repro.serving.policies.Deployment.effective_capacity_rps`:

    * rate above ``target_utilisation`` x capacity boots the next powered-off
      instance (fleet order), which becomes ready ``boot_ms`` later;
    * rate below ``scale_down_utilisation`` x the capacity that would remain
      stops the highest-indexed powered instance (never below
      ``min_instances``), ending its idle-power draw.

    The dead band between the two thresholds prevents flapping, mirroring the
    hysteresis of the serving policies.
    """

    min_instances: int = 1
    max_instances: Optional[int] = None
    target_utilisation: float = 0.70
    scale_down_utilisation: float = 0.30
    decision_interval_ms: float = 200.0
    window_ms: float = 1000.0

    def __post_init__(self) -> None:
        if int(self.min_instances) < 1:
            raise ConfigurationError(
                f"min_instances must be >= 1, got {self.min_instances}"
            )
        if self.max_instances is not None and int(self.max_instances) < int(
            self.min_instances
        ):
            raise ConfigurationError(
                f"max_instances ({self.max_instances}) must be >= min_instances "
                f"({self.min_instances})"
            )
        check_fraction(self.target_utilisation, "target_utilisation", allow_zero=False)
        check_fraction(
            self.scale_down_utilisation, "scale_down_utilisation", allow_zero=False
        )
        if self.scale_down_utilisation >= self.target_utilisation:
            raise ConfigurationError(
                f"scale_down_utilisation ({self.scale_down_utilisation}) must lie below "
                f"target_utilisation ({self.target_utilisation}) to form a dead band"
            )
        check_positive(self.decision_interval_ms, "decision_interval_ms")
        check_positive(self.window_ms, "window_ms")


@dataclass(frozen=True)
class AutoscaleEvent:
    """One autoscaler action, for the fleet trace and examples."""

    time_ms: float
    action: str  # "boot" | "stop"
    instance: str
    active: int  # powered instances after the action


@dataclass(frozen=True)
class InstanceOutcome:
    """Everything one instance did during a fleet run.

    ``assigned`` holds the *global* indices (positions in the fleet's
    arrival-sorted stream) of the requests routed here, in arrival order —
    the k-th entry corresponds to the instance-local ``RequestRecord.index``
    ``k``.  ``result`` is ``None`` for instances that never received a
    request.
    """

    instance: FleetInstance
    assigned: Tuple[int, ...]
    result: Optional[ServingResult]
    up_ms: float
    boots: int

    @property
    def num_requests(self) -> int:
        """Requests served by this instance."""
        return len(self.assigned)

    def idle_energy_mj(self) -> float:
        """Static energy of powered-but-not-executing silicon (Eq. 10 floor).

        Each compute unit draws its static power for the instance's whole
        powered time minus the time it actually executed (execution energy
        already includes the static share).  With an explicit
        ``idle_power_w`` the whole draw is charged against the bottleneck
        occupancy instead.
        """
        if self.up_ms <= 0.0:
            return 0.0
        busy_ms = dict(self.result.busy_ms) if self.result is not None else {}
        if self.instance.idle_power_w is not None:
            busiest = max(busy_ms.values()) if busy_ms else 0.0
            return self.instance.idle_power_w * max(0.0, self.up_ms - busiest)
        return float(
            sum(
                static_w * max(0.0, self.up_ms - busy_ms.get(unit_name, 0.0))
                for unit_name, static_w in self.instance.static_power_by_unit.items()
            )
        )

    def utilisation(self) -> float:
        """Bottleneck-unit busy fraction of the instance's powered time."""
        if self.result is None or self.up_ms <= 0.0:
            return 0.0
        return max(self.result.busy_ms.values()) / self.up_ms


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet simulation produced.

    ``assignments[k]`` is the instance index serving the k-th request of the
    arrival-sorted stream, or ``-1`` when it was dropped; ``requests`` is
    that sorted stream, so conservation (served + dropped == generated) is
    checkable directly.
    """

    router: str
    requests: Tuple[Request, ...]
    outcomes: Tuple[InstanceOutcome, ...]
    assignments: Tuple[int, ...]
    dropped: Tuple[int, ...]
    events: Tuple[AutoscaleEvent, ...]
    initial_active: int
    duration_ms: float

    @property
    def num_requests(self) -> int:
        """Served requests across the whole fleet."""
        return sum(outcome.num_requests for outcome in self.outcomes)

    @property
    def num_dropped(self) -> int:
        """Requests no ready instance could (or would) take."""
        return len(self.dropped)

    def records(self):
        """Fleet-wide request records, sorted by global index."""
        from .fleet_metrics import fleet_records

        return fleet_records(self)

    def metrics(self):
        """Aggregate fleet metrics (percentiles, joules, utilisation)."""
        from .fleet_metrics import compute_fleet_metrics

        return compute_fleet_metrics(self)

    def write_trace(self, path) -> None:
        """Export the per-request fleet trace as JSONL (byte-deterministic)."""
        from .fleet_metrics import write_fleet_trace_jsonl

        write_fleet_trace_jsonl(self.records(), path)


@dataclass
class _InstanceState:
    """Mutable power/bookkeeping state of one instance during routing."""

    powered: bool = False
    ready_at_ms: float = 0.0
    up_since_ms: float = 0.0
    up_ms: float = 0.0
    boots: int = 0

    def power_on(self, now_ms: float, boot_ms: float) -> None:
        self.powered = True
        self.ready_at_ms = now_ms + boot_ms
        self.up_since_ms = now_ms
        self.boots += 1

    def power_off(self, now_ms: float) -> None:
        self.powered = False
        self.up_ms += now_ms - self.up_since_ms


class FleetSimulator:
    """Seedable simulator of a heterogeneous fleet behind one router.

    Parameters
    ----------
    instances:
        The fleet, in priority order (routers and the autoscaler break ties
        towards earlier instances; put the board you want serving the trough
        first).
    router:
        A registered router name (:func:`router_names`) or a ready
        :class:`FleetRouter` instance.
    autoscaler:
        ``None`` keeps every instance powered for the whole run; a policy
        starts ``min_instances`` warm at t=0 and scales within
        ``[min_instances, max_instances]`` as the observed rate swings.
    seed:
        Per-instance replay seed basis (difficulty/noise streams); uses the
        same derivation as :func:`repro.serving.bridge.simulate_deployment`,
        so a fleet of one reproduces single-instance serving byte for byte.
    deadline_ms:
        Default relative deadline for requests not carrying one.
    shed_backlog_ms:
        Optional load-shedding bound: a request is dropped when every ready
        instance's estimated backlog exceeds it (``None`` never sheds).
    """

    def __init__(
        self,
        instances: Sequence[FleetInstance],
        router: Union[str, FleetRouter] = "round-robin",
        autoscaler: Optional[AutoscalerPolicy] = None,
        seed: int = 0,
        deadline_ms: Optional[float] = None,
        shed_backlog_ms: Optional[float] = None,
        controller: Optional[ThresholdExitController] = None,
    ) -> None:
        if not instances:
            raise ConfigurationError("a fleet needs at least one instance")
        names = [instance.name for instance in instances]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"fleet instances must have distinct names, got {names}")
        self.instances = tuple(instances)
        self.router = get_router(router) if isinstance(router, str) else router
        if autoscaler is not None and int(autoscaler.min_instances) > len(self.instances):
            raise ConfigurationError(
                f"min_instances ({autoscaler.min_instances}) exceeds the fleet size "
                f"({len(self.instances)})"
            )
        self.autoscaler = autoscaler
        self.seed = int(seed)
        if deadline_ms is not None:
            check_positive(deadline_ms, "deadline_ms")
        self.deadline_ms = deadline_ms
        if shed_backlog_ms is not None:
            check_positive(shed_backlog_ms, "shed_backlog_ms")
        self.shed_backlog_ms = shed_backlog_ms
        self.controller = controller

    # -- public API --------------------------------------------------------------
    def run(
        self,
        workload: Union[ArrivalProcess, Sequence[Request]],
        duration_ms: Optional[float] = None,
    ) -> FleetResult:
        """Route and replay one request stream through the fleet."""
        if isinstance(workload, ArrivalProcess):
            if duration_ms is None:
                raise ConfigurationError(
                    "duration_ms is required when passing an ArrivalProcess"
                )
            requests = workload.generate(duration_ms, seed=self.seed)
        else:
            requests = tuple(workload)
        if not requests:
            raise ConfigurationError("cannot simulate an empty request stream")
        ordered = tuple(sorted(requests, key=lambda request: request.arrival_ms))

        assignments, dropped, events, states, initial_active = self._route(ordered)

        # Replay pass: each instance's sub-stream through the unchanged
        # per-CU event loop, seeded exactly like single-instance serving.
        per_instance: List[List[int]] = [[] for _ in self.instances]
        for global_index, instance_index in enumerate(assignments):
            if instance_index >= 0:
                per_instance[instance_index].append(global_index)
        results: List[Optional[ServingResult]] = []
        for instance_index, assigned in enumerate(per_instance):
            if not assigned:
                results.append(None)
                continue
            instance = self.instances[instance_index]
            simulator = TrafficSimulator(
                platform=instance.platform,
                policy=StaticPolicy(instance.deployment),
                controller=self.controller,
                seed=self._replay_seed(),
                deadline_ms=self.deadline_ms,
            )
            results.append(
                simulator.run(
                    [ordered[index] for index in assigned], duration_ms=duration_ms
                )
            )

        horizon = max(
            [float(duration_ms) if duration_ms is not None else 0.0]
            + [result.duration_ms for result in results if result is not None]
            + [ordered[-1].arrival_ms]
        )
        # Close the books on instances still powered at the horizon.
        for state in states:
            if state.powered:
                state.power_off(horizon)

        outcomes = tuple(
            InstanceOutcome(
                instance=instance,
                assigned=tuple(per_instance[index]),
                result=results[index],
                up_ms=states[index].up_ms,
                boots=states[index].boots,
            )
            for index, instance in enumerate(self.instances)
        )
        return FleetResult(
            router=self.router.name,
            requests=ordered,
            outcomes=outcomes,
            assignments=tuple(assignments),
            dropped=tuple(dropped),
            events=tuple(events),
            initial_active=initial_active,
            duration_ms=horizon,
        )

    # -- internals ---------------------------------------------------------------
    def _replay_seed(self) -> np.random.Generator:
        """Identical derivation to ``bridge._simulation_seed``: every instance
        replays the same seeded difficulty basis over its own sub-stream, so
        a fleet of one is byte-identical to :func:`simulate_deployment`."""
        return np.random.default_rng(np.random.SeedSequence([self.seed, 0x5E57]))

    def _route(self, ordered: Sequence[Request]):
        """The deterministic routing pass (no randomness consumed)."""
        view = _RoutingView(self.instances, self.deadline_ms)
        self.router.reset()
        states = [_InstanceState() for _ in self.instances]
        initial = (
            len(self.instances)
            if self.autoscaler is None
            else int(self.autoscaler.min_instances)
        )
        for state in states[:initial]:
            state.powered = True  # warm at t=0: no boot latency, no boot count
        events: List[AutoscaleEvent] = []
        assignments: List[int] = []
        dropped: List[int] = []
        window: deque = deque()
        last_decision_ms = -float("inf")

        for global_index, request in enumerate(ordered):
            now = request.arrival_ms
            view.advance(now)
            if self.autoscaler is not None:
                window.append(now)
                cutoff = now - self.autoscaler.window_ms
                while window and window[0] < cutoff:
                    window.popleft()
                if now - last_decision_ms >= self.autoscaler.decision_interval_ms:
                    event = self._autoscale(now, window, states)
                    last_decision_ms = now
                    if event is not None:
                        events.append(event)
            ready = [
                index
                for index, state in enumerate(states)
                if state.powered and state.ready_at_ms <= now
            ]
            if self.shed_backlog_ms is not None:
                ready = [
                    index
                    for index in ready
                    if view.backlog_ms[index] <= self.shed_backlog_ms
                ]
            if not ready:
                assignments.append(-1)
                dropped.append(global_index)
                continue
            choice = self.router.route(request, now, ready, view)
            if choice not in ready:
                raise ConfigurationError(
                    f"router {self.router.name!r} picked instance index {choice}, "
                    f"which is not ready at t={now:.3f} ms"
                )
            assignments.append(choice)
            view.assign(choice)
        return assignments, dropped, events, states, initial

    def _autoscale(
        self, now: float, window: deque, states: List[_InstanceState]
    ) -> Optional[AutoscaleEvent]:
        policy = self.autoscaler
        rate_rps = 1000.0 * len(window) / policy.window_ms
        powered = [index for index, state in enumerate(states) if state.powered]
        capacity = sum(
            self.instances[index].deployment.effective_capacity_rps() for index in powered
        )
        limit = (
            len(self.instances)
            if policy.max_instances is None
            else min(int(policy.max_instances), len(self.instances))
        )
        if rate_rps > policy.target_utilisation * capacity and len(powered) < limit:
            for index, state in enumerate(states):
                if not state.powered:
                    state.power_on(now, self.instances[index].boot_ms)
                    return AutoscaleEvent(
                        time_ms=now,
                        action="boot",
                        instance=self.instances[index].name,
                        active=len(powered) + 1,
                    )
        if len(powered) > int(policy.min_instances):
            candidate = powered[-1]
            remaining = capacity - self.instances[
                candidate
            ].deployment.effective_capacity_rps()
            if rate_rps < policy.scale_down_utilisation * remaining:
                states[candidate].power_off(now)
                return AutoscaleEvent(
                    time_ms=now,
                    action="stop",
                    instance=self.instances[candidate].name,
                    active=len(powered) - 1,
                )
        return None


def simulate_fleet(
    instances: Sequence[FleetInstance],
    workload: Union[ArrivalProcess, Sequence[Request]],
    duration_ms: Optional[float] = None,
    router: Union[str, FleetRouter] = "round-robin",
    autoscaler: Optional[AutoscalerPolicy] = None,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    shed_backlog_ms: Optional[float] = None,
    controller: Optional[ThresholdExitController] = None,
) -> FleetResult:
    """One-call fleet simulation (the :func:`simulate_deployment` sibling)."""
    simulator = FleetSimulator(
        instances,
        router=router,
        autoscaler=autoscaler,
        seed=seed,
        deadline_ms=deadline_ms,
        shed_backlog_ms=shed_backlog_ms,
        controller=controller,
    )
    return simulator.run(workload, duration_ms=duration_ms)
