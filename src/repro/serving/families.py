"""Parameterised workload families: scenario sweeps instead of single traces.

One :class:`~repro.serving.workload.ArrivalProcess` is a single traffic
scenario; judging a *platform* needs a family of them — the same shape of
traffic at deterministically varied intensities, periods and mixes.  A
:class:`WorkloadFamily` captures that shape as a frozen parameter set and
expands, via :meth:`WorkloadFamily.expand`, into ``n`` seeded member
processes whose parameters are jittered around the family's base values.
The expansion is pure: the same ``(family, seed, n)`` always yields members
with identical parameters, so a serving campaign replaying them is
byte-deterministic end to end.

Four families cover the serving regimes of the workload zoo:

* :class:`SteadyPoissonFamily` -- open-loop Poisson traffic at jittered rates,
* :class:`OnOffBurstFamily` -- flash-crowd bursts with jittered envelopes,
* :class:`DiurnalFamily` -- day-shaped sinusoidal load at jittered peaks,
* :class:`MultiTenantMixFamily` -- a steady tenant sharing the platform with
  a bursty one.

A registry mirrors :mod:`repro.soc.presets`: :func:`family_names`,
:func:`get_family` (case/separator-insensitive) and :func:`default_families`
for the campaign default sweep.  Family parameters are part of each frozen
dataclass's ``repr``, which the serving-campaign checkpoint fingerprints —
editing a family therefore invalidates (and re-runs) exactly the cells that
replayed it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..utils import check_non_negative, check_positive
from .workload import (
    ArrivalProcess,
    DiurnalArrivals,
    MultiTenantStream,
    OnOffBursts,
    PoissonArrivals,
)

__all__ = [
    "WorkloadFamily",
    "SteadyPoissonFamily",
    "OnOffBurstFamily",
    "DiurnalFamily",
    "MultiTenantMixFamily",
    "family_registry",
    "family_names",
    "get_family",
    "default_families",
    "member_traffic_seed",
]


def _name_tag(name: str) -> int:
    """Stable 31-bit tag of a family name (process- and run-independent)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def member_traffic_seed(seed: int, family_name: str, index: int) -> int:
    """The traffic seed replayed for member ``index`` of a family.

    Derived from the campaign seed, the family *name* and the member index
    only — never from execution order — so serial, cell-parallel and resumed
    serving campaigns replay identical arrival and difficulty streams.
    """
    sequence = np.random.SeedSequence(
        [int(seed), _name_tag(family_name), int(index), 0x7AF1]
    )
    return int(np.random.default_rng(sequence).integers(0, 2**31 - 1))


def _jittered(rng: np.random.Generator, jitter: float) -> float:
    """One multiplicative jitter draw in ``[1 - jitter, 1 + jitter]``."""
    return float(rng.uniform(1.0 - jitter, 1.0 + jitter))


class WorkloadFamily:
    """Base class: a named, frozen recipe expanding into member processes.

    Subclasses are frozen dataclasses carrying a ``name`` plus the base
    parameters and a ``jitter`` fraction; :meth:`_member` builds one
    concrete :class:`~repro.serving.workload.ArrivalProcess` from a
    member-specific RNG.
    """

    name: str = "family"

    def expand(self, seed: int, n: int) -> Tuple[ArrivalProcess, ...]:
        """The family's ``n`` member processes under ``seed``.

        Member ``i`` draws its parameters from an RNG keyed on
        ``(seed, family name, i)``, so growing ``n`` appends members without
        perturbing the existing ones, and two families with different names
        never correlate.
        """
        if int(n) < 1:
            raise ConfigurationError(f"a family must expand to >= 1 members, got {n}")
        return tuple(self._member(self._member_rng(seed, index)) for index in range(int(n)))

    def member_labels(self, n: int) -> Tuple[str, ...]:
        """Display labels of the first ``n`` members (``name#index``)."""
        return tuple(f"{self.name}#{index}" for index in range(int(n)))

    def _member_rng(self, seed: int, index: int) -> np.random.Generator:
        sequence = np.random.SeedSequence([int(seed), _name_tag(self.name), int(index)])
        return np.random.default_rng(sequence)

    def peak_member(
        self, seed: int, n: int, probe_ms: float = 1000.0
    ) -> Tuple[int, ArrivalProcess, int]:
        """The member that actually offers the most load under ``seed``.

        Expands the first ``n`` members and counts the arrivals each would
        generate over a ``probe_ms`` probe window with its own campaign
        traffic seed (:func:`member_traffic_seed`) — the same stream a serving
        campaign replays — then returns ``(index, process, traffic_seed)`` of
        the busiest one (ties break to the lowest index).  This is the member
        a measured serving objective should provision for: unlike
        :attr:`peak_rate_rps` it reflects the jittered parameters the members
        were actually dealt, so it stays meaningful for families whose base
        rate is not the binding one.
        """
        check_positive(probe_ms, "probe_ms")
        best_index, best_count = 0, -1
        processes = self.expand(seed, n)
        for index, process in enumerate(processes):
            traffic_seed = member_traffic_seed(seed, self.name, index)
            count = len(process.generate(probe_ms, seed=traffic_seed))
            if count > best_count:
                best_index, best_count = index, count
        return (
            best_index,
            processes[best_index],
            member_traffic_seed(seed, self.name, best_index),
        )

    def _member(self, rng: np.random.Generator) -> ArrivalProcess:
        raise NotImplementedError

    @property
    def peak_rate_rps(self) -> float:
        """The family's worst-case sustained arrival rate, in requests/s.

        This is the rate a serving-aware objective should provision for:
        the steady rate for memoryless traffic, the burst rate for bursty
        shapes.  Subclasses without a meaningful peak must override or the
        serving objective cannot be derived from them.
        """
        raise ConfigurationError(
            f"workload family {self.name!r} does not define a peak rate; "
            "pass target_rps explicitly"
        )

    def _check_jitter(self, jitter: float) -> None:
        check_non_negative(jitter, "jitter")
        if jitter >= 1.0:
            raise ConfigurationError(
                f"jitter must lie in [0, 1) so member rates stay positive, got {jitter}"
            )


@dataclass(frozen=True)
class SteadyPoissonFamily(WorkloadFamily):
    """Memoryless open-loop traffic at rates jittered around ``rate_rps``."""

    rate_rps: float = 60.0
    jitter: float = 0.25
    deadline_ms: Optional[float] = None
    name: str = "steady-poisson"

    def __post_init__(self) -> None:
        check_positive(self.rate_rps, "rate_rps")
        self._check_jitter(self.jitter)

    def _member(self, rng: np.random.Generator) -> ArrivalProcess:
        return PoissonArrivals(
            self.rate_rps * _jittered(rng, self.jitter), deadline_ms=self.deadline_ms
        )

    @property
    def peak_rate_rps(self) -> float:
        return float(self.rate_rps)


@dataclass(frozen=True)
class OnOffBurstFamily(WorkloadFamily):
    """Flash-crowd traffic: burst/idle envelopes jittered around the base.

    Each member jitters the burst rate and both phase lengths independently,
    so the family spans sharp short bursts and longer rolling surges at the
    same average intensity class.
    """

    burst_rps: float = 120.0
    idle_rps: float = 8.0
    burst_ms: float = 400.0
    idle_ms: float = 600.0
    jitter: float = 0.25
    deadline_ms: Optional[float] = None
    name: str = "on-off-bursts"

    def __post_init__(self) -> None:
        check_positive(self.burst_rps, "burst_rps")
        check_non_negative(self.idle_rps, "idle_rps")
        check_positive(self.burst_ms, "burst_ms")
        check_positive(self.idle_ms, "idle_ms")
        self._check_jitter(self.jitter)

    def _member(self, rng: np.random.Generator) -> ArrivalProcess:
        return OnOffBursts(
            burst_rps=self.burst_rps * _jittered(rng, self.jitter),
            idle_rps=self.idle_rps,
            burst_ms=self.burst_ms * _jittered(rng, self.jitter),
            idle_ms=self.idle_ms * _jittered(rng, self.jitter),
            deadline_ms=self.deadline_ms,
        )

    @property
    def peak_rate_rps(self) -> float:
        return float(self.burst_rps)


@dataclass(frozen=True)
class DiurnalFamily(WorkloadFamily):
    """Day-shaped sinusoidal load at jittered peak rates and periods."""

    peak_rps: float = 90.0
    trough_fraction: float = 0.2
    period_ms: float = 2000.0
    jitter: float = 0.25
    deadline_ms: Optional[float] = None
    name: str = "diurnal"

    def __post_init__(self) -> None:
        check_positive(self.peak_rps, "peak_rps")
        check_non_negative(self.trough_fraction, "trough_fraction")
        if self.trough_fraction > 1.0:
            raise ConfigurationError(
                f"trough_fraction must lie in [0, 1], got {self.trough_fraction}"
            )
        check_positive(self.period_ms, "period_ms")
        self._check_jitter(self.jitter)

    def _member(self, rng: np.random.Generator) -> ArrivalProcess:
        peak = self.peak_rps * _jittered(rng, self.jitter)
        return DiurnalArrivals(
            peak_rps=peak,
            trough_rps=peak * self.trough_fraction,
            period_ms=self.period_ms * _jittered(rng, self.jitter),
            deadline_ms=self.deadline_ms,
        )

    @property
    def peak_rate_rps(self) -> float:
        return float(self.peak_rps)


@dataclass(frozen=True)
class MultiTenantMixFamily(WorkloadFamily):
    """A steady tenant and a bursty tenant sharing the platform.

    Members jitter the steady rate and the burst envelope together, so the
    family sweeps how violently the bursty tenant disturbs the steady one's
    tail latency on a shared board.
    """

    steady_rps: float = 40.0
    burst_rps: float = 90.0
    burst_ms: float = 400.0
    idle_ms: float = 800.0
    jitter: float = 0.25
    deadline_ms: Optional[float] = None
    name: str = "multi-tenant-mix"

    def __post_init__(self) -> None:
        check_positive(self.steady_rps, "steady_rps")
        check_positive(self.burst_rps, "burst_rps")
        check_positive(self.burst_ms, "burst_ms")
        check_positive(self.idle_ms, "idle_ms")
        self._check_jitter(self.jitter)

    def _member(self, rng: np.random.Generator) -> ArrivalProcess:
        steady = PoissonArrivals(
            self.steady_rps * _jittered(rng, self.jitter),
            tenant="steady",
            deadline_ms=self.deadline_ms,
        )
        bursty = OnOffBursts(
            burst_rps=self.burst_rps * _jittered(rng, self.jitter),
            idle_rps=0.0,
            burst_ms=self.burst_ms * _jittered(rng, self.jitter),
            idle_ms=self.idle_ms * _jittered(rng, self.jitter),
            tenant="bursty",
            deadline_ms=self.deadline_ms,
        )
        return MultiTenantStream((steady, bursty))

    @property
    def peak_rate_rps(self) -> float:
        # Worst case: the bursty tenant surges on top of the steady tenant.
        return float(self.steady_rps + self.burst_rps)


#: The registry: canonical name -> zero-argument family factory.
_REGISTRY: Dict[str, Callable[[], WorkloadFamily]] = {
    "steady-poisson": SteadyPoissonFamily,
    "on-off-bursts": OnOffBurstFamily,
    "diurnal": DiurnalFamily,
    "multi-tenant-mix": MultiTenantMixFamily,
}


def family_registry() -> Dict[str, Callable[[], WorkloadFamily]]:
    """A copy of the family registry (name -> factory)."""
    return dict(_REGISTRY)


def family_names() -> Tuple[str, ...]:
    """Canonical names of every registered family, sorted."""
    return tuple(sorted(_REGISTRY))


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def get_family(name: str) -> WorkloadFamily:
    """Build the registered family called ``name`` with default parameters.

    Names are case-insensitive and underscore/dash agnostic, exactly like
    :func:`repro.soc.presets.get_platform`.
    """
    factory = _REGISTRY.get(_canonical(name))
    if factory is None:
        raise ConfigurationError(
            f"unknown workload family {name!r}; registered families: {list(family_names())}"
        )
    return factory()


def default_families() -> Tuple[WorkloadFamily, ...]:
    """The default serving-campaign sweep: one instance of every registered
    family, in registry order."""
    return tuple(factory() for factory in _REGISTRY.values())


def resolve_families(
    families: Optional[Sequence[Union[str, WorkloadFamily]]],
) -> Tuple[WorkloadFamily, ...]:
    """Normalise a families argument: names and/or instances, unique names.

    ``None`` yields :func:`default_families`.
    """
    if families is None:
        return default_families()
    resolved = tuple(
        item if isinstance(item, WorkloadFamily) else get_family(item) for item in families
    )
    if not resolved:
        raise ConfigurationError("pass None for the default families, not an empty list")
    names = [family.name for family in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"workload families must have distinct names, got {names}")
    return resolved
