"""Aggregate serving metrics and the JSONL trace export.

Table II reports average-case latency/energy per isolated sample; a serving
system is judged on distributions: tail latency (p95/p99), sustained
throughput, deadline misses, per-unit utilisation and cumulative energy over
a whole trace.  :func:`compute_metrics` reduces a simulation's per-request
records to those numbers, and :func:`write_trace_jsonl` exports the raw
records deterministically (sorted keys, shortest-round-trip floats) so a
seeded run always produces a byte-identical trace file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .simulator import RequestRecord, ServingResult

__all__ = [
    "ServingMetrics",
    "metric_direction",
    "compute_metrics",
    "write_trace_jsonl",
    "read_trace_jsonl",
]


def _asc():
    """Field that ranks ascending: smaller is better."""
    return field(metadata={"rank": "asc"})


def _desc():
    """Field that ranks descending: bigger is better."""
    return field(metadata={"rank": "desc"})


@dataclass(frozen=True)
class ServingMetrics:
    """Distributional serving behaviour of one (policy, scenario) run.

    Every numeric quality metric declares its sort direction in the field
    metadata (``rank: "asc"`` for smaller-is-better, ``"desc"`` for
    bigger-is-better); fields without a direction (identifiers, raw trace
    properties) cannot be ranked on.  :func:`metric_direction` is the single
    authority :func:`repro.serving.bridge.rank_under_traffic` consults, so an
    unknown or direction-less name raises instead of silently ranking the
    wrong way.
    """

    policy: str
    num_requests: int
    duration_ms: float
    throughput_rps: float = _desc()
    mean_latency_ms: float = _asc()
    p50_latency_ms: float = _asc()
    p95_latency_ms: float = _asc()
    p99_latency_ms: float = _asc()
    max_latency_ms: float = _asc()
    mean_queueing_ms: float = _asc()
    deadline_miss_rate: float = _asc()
    accuracy: float = _desc()
    mean_stages: float = _asc()
    total_energy_mj: float = _asc()
    energy_per_request_mj: float = _asc()
    mean_in_flight: float = _asc()
    peak_in_flight: int = _asc()
    utilisation: Mapping[str, float] = field(metadata={"rank": None})

    @property
    def completed(self) -> int:
        """Requests that actually finished; ``0`` marks a degenerate run.

        A deployment hot enough to shed (or drop) every request produces no
        completion records at all; rather than NaN means and divide-by-zero
        scores downstream, such runs reduce to :meth:`degenerate` and this
        flag is the single test every consumer (ranking, scoring, reporting)
        checks before trusting the latency/energy aggregates.
        """
        return int(self.num_requests)

    @classmethod
    def degenerate(
        cls,
        policy: str,
        duration_ms: float,
        *,
        mean_in_flight: float = 0.0,
        peak_in_flight: int = 0,
        utilisation: Optional[Mapping[str, float]] = None,
    ) -> "ServingMetrics":
        """The canonical zero-completion aggregate (``completed == 0``).

        Defined once so every empty completion set — a fully shedding fleet
        member, a tenant filter that matches nothing — collapses to the same
        values: latencies and energy-per-request ``inf`` (worst possible on
        every ascending axis), throughput/accuracy ``0.0``, deadline miss
        rate ``1.0``.  Scores derived from these rank the run strictly last
        instead of raising.  In-flight and utilisation statistics stay
        overridable because the *system* state is well-defined even when no
        request completes.
        """
        return cls(
            policy=policy,
            num_requests=0,
            duration_ms=float(duration_ms),
            throughput_rps=0.0,
            mean_latency_ms=float("inf"),
            p50_latency_ms=float("inf"),
            p95_latency_ms=float("inf"),
            p99_latency_ms=float("inf"),
            max_latency_ms=float("inf"),
            mean_queueing_ms=float("inf"),
            deadline_miss_rate=1.0,
            accuracy=0.0,
            mean_stages=0.0,
            total_energy_mj=0.0,
            energy_per_request_mj=float("inf"),
            mean_in_flight=float(mean_in_flight),
            peak_in_flight=int(peak_in_flight),
            utilisation=dict(utilisation or {}),
        )

    def summary_row(self) -> dict:
        """Flat dictionary for :func:`repro.core.report.format_table`."""
        row = {
            "policy": self.policy,
            "requests": self.num_requests,
            "rps": self.throughput_rps,
            "p50_ms": self.p50_latency_ms,
            "p95_ms": self.p95_latency_ms,
            "p99_ms": self.p99_latency_ms,
            "miss_%": 100.0 * self.deadline_miss_rate,
            "acc_%": 100.0 * self.accuracy,
            "mJ/req": self.energy_per_request_mj,
        }
        for name, value in sorted(self.utilisation.items()):
            row[f"util_{name}_%"] = 100.0 * value
        return row


def metric_direction(metric: str) -> str:
    """Sort direction (``"asc"`` or ``"desc"``) declared for ``metric``.

    Raises :class:`~repro.errors.ConfigurationError` for names that are not
    :class:`ServingMetrics` fields (typos, removed fields) or that carry no
    direction (identifiers like ``policy``, mappings like ``utilisation``),
    instead of guessing a direction and silently mis-ranking.
    """
    by_name = {f.name: f for f in fields(ServingMetrics)}
    entry = by_name.get(metric)
    direction = entry.metadata.get("rank") if entry is not None else None
    if direction is None:
        rankable = sorted(
            name for name, f in by_name.items() if f.metadata.get("rank") is not None
        )
        raise ConfigurationError(
            f"unknown or unrankable serving metric {metric!r}; expected one of {rankable}"
        )
    return direction


def _percentile(sorted_values: np.ndarray, q: float) -> float:
    return float(np.percentile(sorted_values, q))


def compute_metrics(
    result: ServingResult, tenant: Optional[str] = None
) -> ServingMetrics:
    """Reduce a :class:`~repro.serving.simulator.ServingResult` to aggregates.

    ``tenant`` restricts the per-request statistics (latency percentiles,
    accuracy, energy, miss rate) to one tenant of a multi-tenant trace;
    utilisation and in-flight statistics always describe the whole system,
    since the hardware is shared.
    """
    records: Sequence[RequestRecord] = result.records
    if tenant is not None:
        records = [record for record in records if record.tenant == tenant]
    if not records:
        # Zero completions (every request shed/dropped, or a tenant filter
        # matching nothing) is a legitimate — if catastrophic — outcome of a
        # saturated deployment; collapse to the canonical degenerate
        # aggregates instead of raising so campaigns rank the cell last.
        return ServingMetrics.degenerate(
            result.policy,
            result.duration_ms,
            mean_in_flight=result.mean_in_flight,
            peak_in_flight=result.peak_in_flight,
            utilisation={
                name: busy / result.duration_ms if result.duration_ms > 0 else 0.0
                for name, busy in result.busy_ms.items()
            },
        )
    # Single pass over the records into one (n, 7) array; every reduction
    # below then sees exactly the values, dtype and element order the old
    # per-field comprehensions produced, so the aggregates stay bit-identical
    # (pinned by the serving goldens and the row-wise reference test).
    columns = np.array(
        [
            (
                record.latency_ms,
                record.queueing_ms,
                record.energy_mj,
                float(record.num_stages),
                1.0 if record.correct else 0.0,
                0.0 if record.deadline_ms is None else 1.0,
                1.0 if record.deadline_missed else 0.0,
            )
            for record in records
        ],
        dtype=float,
    )
    latencies = np.sort(columns[:, 0])
    queueing = np.ascontiguousarray(columns[:, 1])
    energies = np.ascontiguousarray(columns[:, 2])
    stages = np.ascontiguousarray(columns[:, 3])
    correct = np.ascontiguousarray(columns[:, 4])
    num_with_deadline = int(columns[:, 5].sum())
    missed = int(columns[:, 6].sum())
    duration_s = result.duration_ms / 1000.0
    return ServingMetrics(
        policy=result.policy,
        num_requests=len(records),
        duration_ms=result.duration_ms,
        throughput_rps=len(records) / duration_s if duration_s > 0 else 0.0,
        mean_latency_ms=float(latencies.mean()),
        p50_latency_ms=_percentile(latencies, 50.0),
        p95_latency_ms=_percentile(latencies, 95.0),
        p99_latency_ms=_percentile(latencies, 99.0),
        max_latency_ms=float(latencies[-1]),
        mean_queueing_ms=float(queueing.mean()),
        deadline_miss_rate=missed / num_with_deadline if num_with_deadline else 0.0,
        accuracy=float(correct.mean()),
        mean_stages=float(stages.mean()),
        total_energy_mj=float(energies.sum()),
        energy_per_request_mj=float(energies.mean()),
        mean_in_flight=result.mean_in_flight,
        peak_in_flight=result.peak_in_flight,
        utilisation={
            name: busy / result.duration_ms if result.duration_ms > 0 else 0.0
            for name, busy in result.busy_ms.items()
        },
    )


def _trace_lines(records: Iterable[RequestRecord]) -> Iterable[str]:
    for record in records:
        yield json.dumps(record.to_json_dict(), sort_keys=True, separators=(",", ":"))


def write_trace_jsonl(records: Iterable[RequestRecord], path) -> Path:
    """Write one JSON object per completed request to ``path``.

    Keys are sorted and floats use Python's shortest round-trip repr, so the
    same seeded simulation always writes a byte-identical file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for line in _trace_lines(records):
            handle.write(line)
            handle.write("\n")
    return target


def read_trace_jsonl(path) -> Tuple[dict, ...]:
    """Load a trace written by :func:`write_trace_jsonl` as plain dicts."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return tuple(json.loads(line) for line in handle if line.strip())
