"""Exception hierarchy for the Map-and-Conquer reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate configuration problems from search failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class PartitionError(ConfigurationError):
    """A partitioning matrix ``P`` or indicator matrix ``I`` is malformed."""


class MappingError(ConfigurationError):
    """A stage-to-compute-unit mapping vector ``M`` is invalid."""


class PlatformError(ConfigurationError):
    """An MPSoC platform description is inconsistent (e.g. unknown CU)."""


class ConstraintViolation(ReproError):
    """A candidate configuration violates a hard search constraint.

    Raised by strict evaluation paths; the evolutionary search itself filters
    violating candidates instead of raising.
    """


class SearchError(ReproError):
    """The optimisation loop was configured or driven incorrectly."""


class PredictionError(ReproError):
    """A surrogate predictor was used before being fitted, or on bad input."""
