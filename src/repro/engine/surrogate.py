"""Surrogate-accelerated search: GBDT-in-the-loop with oracle re-validation.

``run_campaign`` spends essentially all of its time in the analytical oracle:
every candidate of every generation of every platform x scenario cell runs
the full partition/profile/simulate pipeline.  NSGANetV2-style surrogate
search inverts that cost structure: drive the inner optimiser through cheap
learned predictors and spend the true evaluator only on (a) a short
bootstrap phase that seeds the training set and (b) periodic re-validation
of the surrogate-incumbent Pareto front, whose residuals flow back into the
training set.

Three pieces implement the pattern:

* :class:`_SurrogateModel` — one :class:`~repro.perf.gbdt.GradientBoostedTrees`
  per objective (latency, energy, worst-case latency/energy, accuracy and
  the scalar search objective), trained on structural features of evaluated
  configurations (:func:`repro.perf.dataset.encode_mapping_features`).
  Structural quantities the features encode exactly — reuse fraction and
  stored feature bytes — are passed through rather than predicted, so
  constraint checks on predictions are exact.
* :class:`SurrogateEvaluationBackend` — wraps any existing backend; real
  evaluations flow through unchanged while ``predict`` answers whole
  populations from the surrogate with one vectorised batch ``predict`` per
  model.
* :class:`SurrogateAssistedStrategy` — adapts any inner ask/tell strategy:
  oracle pass-through until the model is ready, then surrogate generations
  interleaved with oracle re-validation every ``validate_every`` rounds.
  The engine only ever sees oracle batches, so the search history, Pareto
  front and best configuration contain exclusively real evaluations and the
  shared :class:`~repro.engine.cache.EvaluationCache` is never poisoned
  with predictions.

Determinism: every quantity in the final :class:`SurrogateReport` is a
function of the seed alone — oracle evaluations are counted as *distinct
content digests told to the strategy*, never as backend invocations (which
vary with cache sharing between cells), so serial, process-backend and
cell-parallel campaign runs report identical bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..perf.dataset import encode_mapping_features
from ..perf.gbdt import GradientBoostedTrees
from ..search.evaluation import ConfigEvaluator, EvaluatedConfig
from ..search.objectives import DEFAULT_OBJECTIVES, ObjectiveSet, as_objective_set
from ..search.pareto import hypervolume, pareto_front
from ..search.space import MappingConfig
from .backends import EvaluationBackend
from .cache import EvaluationCache
from .strategies import SearchStrategy

__all__ = [
    "SurrogateSettings",
    "SurrogatePrediction",
    "SurrogateObjective",
    "SurrogateEvaluationBackend",
    "SurrogateAssistedStrategy",
    "SurrogateReport",
    "spearman_rank_correlation",
]


@dataclass(frozen=True)
class SurrogateSettings:
    """Configuration of a surrogate-assisted search.

    Parameters
    ----------
    bootstrap_generations:
        Oracle generations run before the surrogate may take over (the
        surrogate also waits for ``min_training_rows``, whichever is later).
    validate_every:
        Re-validate the surrogate-incumbent front through the oracle every
        this many surrogate generations.
    validation_cap:
        Maximum front members sent to the oracle per validation round.
    min_training_rows:
        Minimum distinct evaluated configurations before the first fit.
    n_estimators, learning_rate, max_depth, min_samples_leaf:
        Hyperparameters of every per-objective
        :class:`~repro.perf.gbdt.GradientBoostedTrees`.
    seed:
        Seed for the GBDT ensembles (models are refit deterministically).
    bootstrap_from_cache:
        Harvest matching entries of the engine's shared evaluation cache as
        free training rows before the search starts.  Campaign cells disable
        this (the shared cache's content depends on scheduling, which would
        break byte-determinism across serial and cell-parallel runs).
    """

    bootstrap_generations: int = 2
    validate_every: int = 4
    validation_cap: int = 8
    min_training_rows: int = 16
    n_estimators: int = 60
    learning_rate: float = 0.1
    max_depth: int = 4
    min_samples_leaf: int = 3
    seed: int = 0
    bootstrap_from_cache: bool = True

    def __post_init__(self) -> None:
        if self.bootstrap_generations < 1:
            raise ConfigurationError(
                f"bootstrap_generations must be >= 1, got {self.bootstrap_generations}"
            )
        if self.validate_every < 1:
            raise ConfigurationError(
                f"validate_every must be >= 1, got {self.validate_every}"
            )
        if self.validation_cap < 1:
            raise ConfigurationError(
                f"validation_cap must be >= 1, got {self.validation_cap}"
            )
        if self.min_training_rows < 2:
            raise ConfigurationError(
                f"min_training_rows must be >= 2, got {self.min_training_rows}"
            )


@dataclass(frozen=True, eq=False)
class SurrogatePrediction:
    """A configuration scored by the surrogate instead of the oracle.

    Property-compatible with :class:`~repro.search.evaluation.EvaluatedConfig`
    for everything the inner strategies touch — scalar metrics, constraint
    quantities and ``config`` — so predictions flow through selection,
    feasibility filtering and non-dominated sorting unchanged.  Reuse
    fraction and stored feature bytes are *exact* (purely structural), the
    rest are model outputs.
    """

    config: MappingConfig
    latency_ms: float
    energy_mj: float
    accuracy: float
    worst_case_latency_ms: float
    worst_case_energy_mj: float
    reuse_fraction: float
    stored_feature_bytes: int
    base_accuracy: float
    objective_value: float
    #: Predicted raw values of custom objective specs (beyond the default
    #: latency/energy/accuracy trio), keyed by spec name.  The objective
    #: layer reads these so custom axes flow through Pareto analysis of
    #: predictions without re-running their extractors (which need oracle
    #: structure predictions do not carry).
    objective_values: Optional[Dict[str, float]] = None

    @property
    def accuracy_drop(self) -> float:
        """Predicted accuracy drop relative to the pretrained baseline."""
        return self.base_accuracy - self.accuracy


class SurrogateObjective:
    """Dispatching objective: model output for predictions, oracle otherwise.

    The paper objective reads deep evaluation structure (exit statistics,
    stage profiles) that predictions do not carry, so the surrogate learns
    the scalar objective directly and this wrapper routes each item to the
    right source.  Inner strategies receive this as their objective; the
    engine keeps the plain oracle objective for its (oracle-only) history.
    """

    def __init__(self, oracle: Callable[[EvaluatedConfig], float]) -> None:
        self.oracle = oracle

    def __call__(self, item) -> float:
        if isinstance(item, SurrogatePrediction):
            return item.objective_value
        return self.oracle(item)


def _symlog(value: float) -> float:
    """Sign-preserving log transform for targets of arbitrary sign/scale."""
    return math.copysign(math.log1p(abs(value)), value)


def _symexp(value: float) -> float:
    """Inverse of :func:`_symlog`."""
    return math.copysign(math.expm1(abs(value)), value)


#: Positive metric targets modelled in log1p space, in row order.
_POSITIVE_TARGETS = ("latency_ms", "energy_mj", "worst_case_latency_ms", "worst_case_energy_mj")


def _transform_target(value: float, transform: str) -> float:
    """Apply a spec's declared training-space transform to one raw target."""
    if transform == "log1p":
        return float(np.log1p(max(value, 0.0)))
    if transform == "symlog":
        return _symlog(value)
    return float(value)


def _inverse_transform(value: float, spec) -> float:
    """Map one model output back to the spec's raw units (with clipping)."""
    if spec.transform == "log1p":
        raw = max(float(np.expm1(value)), 1e-9)
    elif spec.transform == "symlog":
        raw = _symexp(float(value))
    else:
        raw = float(value)
    if spec.clip is not None:
        low, high = spec.clip
        raw = float(np.clip(raw, low, high))
    return raw


class _SurrogateModel:
    """Per-objective GBDT ensemble over structural mapping features.

    The five structural targets (latency, energy, their worst cases and
    accuracy) plus the scalar search objective are always modelled — they
    back constraint checks and scalar selection regardless of what the
    search optimises.  Every :class:`~repro.search.objectives.ObjectiveSpec`
    beyond the default trio gets its own additional model, trained under the
    spec's declared transform on the rows where its extractor is finite, so
    the surrogate learns whatever axes the search actually ranks on
    (NSGANetV2's "model the search objectives" rule).
    """

    def __init__(
        self,
        evaluator: ConfigEvaluator,
        settings: SurrogateSettings,
        objective: Callable[[EvaluatedConfig], float],
        objectives: Optional[ObjectiveSet] = None,
    ) -> None:
        self.evaluator = evaluator
        self.settings = settings
        self.objective = objective
        self.objectives = as_objective_set(objectives)
        self._extra_specs = tuple(
            spec for spec in self.objectives if spec not in DEFAULT_OBJECTIVES.specs
        )
        self._rows: Dict[str, Tuple[np.ndarray, Dict[str, float]]] = {}
        self._models: Dict[str, GradientBoostedTrees] = {}
        self._dirty = False

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def ready(self) -> bool:
        """Whether enough training rows exist for a trustworthy first fit."""
        if len(self._rows) < self.settings.min_training_rows:
            return False
        finite = sum(
            1 for _, targets in self._rows.values() if math.isfinite(targets["objective"])
        )
        if finite < self.settings.min_training_rows:
            return False
        for spec in self._extra_specs:
            key = f"spec:{spec.name}"
            spec_finite = sum(
                1 for _, targets in self._rows.values() if math.isfinite(targets[key])
            )
            if spec_finite < self.settings.min_training_rows:
                return False
        return True

    def featurize(self, config: MappingConfig) -> np.ndarray:
        return encode_mapping_features(
            self.evaluator.network, config, self.evaluator.platform
        )

    def observe(self, digest: str, evaluated: EvaluatedConfig) -> bool:
        """Add one oracle result as a training row (deduplicated by digest)."""
        if digest in self._rows:
            return False
        targets = {
            "latency_ms": float(evaluated.latency_ms),
            "energy_mj": float(evaluated.energy_mj),
            "worst_case_latency_ms": float(evaluated.worst_case_latency_ms),
            "worst_case_energy_mj": float(evaluated.worst_case_energy_mj),
            "accuracy": float(evaluated.accuracy),
            "objective": float(self.objective(evaluated)),
        }
        for spec in self._extra_specs:
            targets[f"spec:{spec.name}"] = float(spec.raw_value(evaluated))
        self._rows[digest] = (self.featurize(evaluated.config), targets)
        self._dirty = True
        return True

    def _fit(self) -> None:
        rows = list(self._rows.values())
        features = np.vstack([row_features for row_features, _ in rows])
        self._models = {}
        for name in _POSITIVE_TARGETS:
            targets = np.array([np.log1p(max(t[name], 0.0)) for _, t in rows])
            self._models[name] = self._new_model().fit(features, targets)
        accuracy = np.array([t["accuracy"] for _, t in rows])
        self._models["accuracy"] = self._new_model().fit(features, accuracy)
        finite_rows = [
            (row_features, t["objective"])
            for row_features, t in rows
            if math.isfinite(t["objective"])
        ]
        objective_features = np.vstack([row_features for row_features, _ in finite_rows])
        objective_targets = np.array([_symlog(value) for _, value in finite_rows])
        self._models["objective"] = self._new_model().fit(
            objective_features, objective_targets
        )
        for spec in self._extra_specs:
            key = f"spec:{spec.name}"
            spec_rows = [
                (row_features, t[key])
                for row_features, t in rows
                if math.isfinite(t[key])
            ]
            if not spec_rows:
                # Every observation saturated (e.g. an expected-wait objective
                # at a rate no mapping sustains): there is nothing to learn,
                # so predictions report inf for this spec.
                continue
            spec_features = np.vstack([row_features for row_features, _ in spec_rows])
            spec_targets = np.array(
                [_transform_target(value, spec.transform) for _, value in spec_rows]
            )
            self._models[key] = self._new_model().fit(spec_features, spec_targets)
        self._dirty = False

    def _new_model(self) -> GradientBoostedTrees:
        settings = self.settings
        # subsample=1.0 keeps fitting RNG-free, so refits depend only on the
        # training rows and are reproducible in any schedule.
        return GradientBoostedTrees(
            n_estimators=settings.n_estimators,
            learning_rate=settings.learning_rate,
            max_depth=settings.max_depth,
            min_samples_leaf=settings.min_samples_leaf,
            subsample=1.0,
            seed=settings.seed,
        )

    def predict(self, configs: Sequence[MappingConfig]) -> List[SurrogatePrediction]:
        """Score a whole population with one batched predict per model."""
        if self._dirty or not self._models:
            self._fit()
        features = np.vstack([self.featurize(config) for config in configs])
        outputs = {name: model.predict(features) for name, model in self._models.items()}
        base_accuracy = self.evaluator.network.base_accuracy
        predictions: List[SurrogatePrediction] = []
        for index, config in enumerate(configs):
            row = features[index]
            extra_values: Optional[Dict[str, float]] = None
            if self._extra_specs:
                extra_values = {}
                for spec in self._extra_specs:
                    key = f"spec:{spec.name}"
                    if key in outputs:
                        extra_values[spec.name] = _inverse_transform(
                            float(outputs[key][index]), spec
                        )
                    else:
                        extra_values[spec.name] = float("inf")
            predictions.append(
                SurrogatePrediction(
                    config=config,
                    latency_ms=max(float(np.expm1(outputs["latency_ms"][index])), 1e-9),
                    energy_mj=max(float(np.expm1(outputs["energy_mj"][index])), 1e-9),
                    accuracy=float(np.clip(outputs["accuracy"][index], 0.0, 1.0)),
                    worst_case_latency_ms=max(
                        float(np.expm1(outputs["worst_case_latency_ms"][index])), 1e-9
                    ),
                    worst_case_energy_mj=max(
                        float(np.expm1(outputs["worst_case_energy_mj"][index])), 1e-9
                    ),
                    # The last two features are exact structural quantities.
                    reuse_fraction=float(row[-2]),
                    stored_feature_bytes=int(round(row[-1])),
                    base_accuracy=base_accuracy,
                    objective_value=_symexp(float(outputs["objective"][index])),
                    objective_values=extra_values,
                )
            )
        return predictions


class SurrogateEvaluationBackend(EvaluationBackend):
    """Wrap any backend with a surrogate side-channel.

    Real evaluations (`evaluate`) pass straight through to the wrapped
    backend; :meth:`predict` answers whole populations from the GBDT models
    and :meth:`observe` feeds oracle results back as training rows.  The
    backend owns the model so the strategy adapter and (optionally) cache
    harvesting share one training set.
    """

    def __init__(
        self,
        inner: EvaluationBackend,
        evaluator: ConfigEvaluator,
        settings: SurrogateSettings,
        objective: Callable[[EvaluatedConfig], float],
        owns_inner: bool = False,
        objectives: Optional[ObjectiveSet] = None,
    ) -> None:
        if not isinstance(inner, EvaluationBackend):
            raise ConfigurationError(
                f"inner must be an EvaluationBackend, got {type(inner).__name__}"
            )
        self.inner = inner
        self.evaluator = evaluator
        self.settings = settings
        self.model = _SurrogateModel(evaluator, settings, objective, objectives)
        self.owns_inner = bool(owns_inner)
        #: Configurations actually sent to the wrapped backend.  Informational
        #: only — cache sharing makes this schedule-dependent, so reports use
        #: the strategy's digest-based count instead.
        self.backend_evaluations = 0
        self.surrogate_predictions = 0

    @property
    def ready(self) -> bool:
        return self.model.ready

    def evaluate(self, configs: Sequence[MappingConfig]) -> List[EvaluatedConfig]:
        results = self.inner.evaluate(configs)
        self.backend_evaluations += len(configs)
        return results

    def predict(self, configs: Sequence[MappingConfig]) -> List[SurrogatePrediction]:
        predictions = self.model.predict(configs)
        self.surrogate_predictions += len(predictions)
        return predictions

    def observe(self, digest: str, evaluated: EvaluatedConfig) -> bool:
        return self.model.observe(digest, evaluated)

    def harvest(self, cache: EvaluationCache) -> int:
        """Bootstrap training rows from a shared cache's matching entries.

        Only entries whose digest this backend's evaluator reproduces are
        used — a shared cache typically also holds other platforms' results,
        which must not train this platform's models.  Entries are ingested
        in digest order so the training set does not depend on cache
        insertion history.
        """
        count = 0
        for digest, value in sorted(cache.items(), key=lambda pair: pair[0]):
            if self.evaluator.content_digest(value.config) != digest:
                continue
            if self.model.observe(digest, value):
                count += 1
        return count

    def close(self) -> None:
        if self.owns_inner:
            self.inner.close()


@dataclass(frozen=True)
class SurrogateReport:
    """Seed-deterministic summary of one surrogate-assisted search."""

    oracle_evaluations: int
    surrogate_evaluations: int
    bootstrap_generations: int
    surrogate_generations: int
    validations: int
    validated_points: int
    rank_correlation: float
    latency_mare: float
    energy_mare: float
    front_regret: float
    settings: SurrogateSettings = field(default_factory=SurrogateSettings)

    @property
    def throughput_multiplier(self) -> float:
        """Candidates scored per oracle call, relative to pure-oracle search."""
        if self.oracle_evaluations == 0:
            return 1.0
        return (
            self.oracle_evaluations + self.surrogate_evaluations
        ) / self.oracle_evaluations


def _average_ranks(values: Sequence[float]) -> np.ndarray:
    """Average ranks (ties share the mean rank), as Spearman requires."""
    array = np.asarray(values, dtype=float)
    order = np.argsort(array, kind="stable")
    ranks = np.empty(array.size, dtype=float)
    position = 0
    while position < array.size:
        end = position
        while end + 1 < array.size and array[order[end + 1]] == array[order[position]]:
            end += 1
        ranks[order[position : end + 1]] = (position + end) / 2.0
        position = end + 1
    return ranks


def spearman_rank_correlation(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Spearman rank correlation with average-rank tie handling.

    Shared by the surrogate's rank-fidelity report and the
    proxy-vs-measured differential layer (``bench_policy_campaigns.py`` and
    the hypothesis tests pin the M/D/1 proxy's rank agreement with simulated
    waits using this exact estimator).  Degenerate inputs answer
    deterministically: fewer than two points correlate perfectly (``1.0``,
    or ``0.0`` for empty input) and an all-ties ranking correlates ``0.0``.
    """
    if len(first) < 2:
        return 1.0 if first else 0.0
    ranks_a = _average_ranks(first)
    ranks_b = _average_ranks(second)
    std_a = float(ranks_a.std())
    std_b = float(ranks_b.std())
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    covariance = float(((ranks_a - ranks_a.mean()) * (ranks_b - ranks_b.mean())).mean())
    return covariance / (std_a * std_b)


#: Backward-compatible private alias (the report path predates the public name).
_spearman = spearman_rank_correlation


def _validation_reference(
    front: Sequence[SurrogatePrediction], objective_set: ObjectiveSet
) -> List[float]:
    """Hypervolume reference slightly worse than the predicted front.

    Reproduces the historical nudges per direction: minimised positive
    metrics get a 10 % margin, maximised ones an absolute 0.1.  Saturated
    (infinite) predictions are excluded from the bound — they cannot anchor
    a finite reference and contribute no volume anyway.
    """
    reference: List[float] = []
    for spec in objective_set:
        values = [spec.value(item) for item in front]
        finite = [value for value in values if math.isfinite(value)]
        worst = max(finite) if finite else 1.0
        if spec.direction == "max":
            reference.append(worst + 0.1 + 1e-9)
        else:
            reference.append(worst * 1.1 + 1e-9)
    return reference


class SurrogateAssistedStrategy(SearchStrategy):
    """Adapt an inner ask/tell strategy to search through the surrogate.

    Phase 1 (bootstrap): inner batches pass through to the engine and real
    results flow back, seeding the training set.  Phase 2 (surrogate): the
    inner strategy's generations are consumed *inside* :meth:`ask` — each
    population is scored by the surrogate and told back immediately — and
    only every ``validate_every`` rounds does :meth:`ask` surface a batch to
    the engine: the unvalidated members of the surrogate-incumbent Pareto
    front, capped at ``validation_cap``, for real oracle evaluation.  Their
    residuals retrain the models; fidelity statistics accumulate into
    :meth:`report`.
    """

    def __init__(
        self,
        inner: SearchStrategy,
        backend: SurrogateEvaluationBackend,
        settings: SurrogateSettings,
        objective: Callable[[EvaluatedConfig], float],
        objectives: Optional[ObjectiveSet] = None,
    ) -> None:
        self.inner = inner
        self.backend = backend
        self.settings = settings
        self.oracle_objective = objective
        self.objectives = as_objective_set(objectives)
        self._phase = "bootstrap"
        self._pending: Optional[str] = None
        self._pending_predictions: List[SurrogatePrediction] = []
        self._finished = False
        self._inner_exhausted = False
        self._validation_due = False
        self._final_validation_done = False
        self._oracle_generations = 0
        self._surrogate_generations = 0
        self._validations = 0
        self._archive: Dict[str, SurrogatePrediction] = {}
        self._validated: set = set()
        self._oracle_digests: set = set()
        self._fidelity_pairs: List[Tuple[float, float]] = []
        self._latency_errors: List[float] = []
        self._energy_errors: List[float] = []
        self._best_oracle_objective = math.inf
        self._best_validated_objective = math.inf

    # -- ask/tell ----------------------------------------------------------------
    def ask(self) -> List[MappingConfig]:
        if self._finished:
            return []
        if self._phase == "bootstrap":
            batch = self.inner.ask()
            if not batch:
                self._finished = True
                return []
            self._pending = "bootstrap"
            return list(batch)
        while True:
            if self._validation_due or self._inner_exhausted:
                if self._inner_exhausted and self._final_validation_done:
                    self._finished = True
                    return []
                batch = self._validation_batch()
                if batch:
                    if self._inner_exhausted:
                        # One capped batch after exhaustion: re-validating the
                        # whole archive front would spend the oracle budget
                        # the surrogate just saved.
                        self._final_validation_done = True
                    self._pending = "validate"
                    self._pending_predictions = batch
                    return [prediction.config for prediction in batch]
                self._validation_due = False
                if self._inner_exhausted:
                    self._finished = True
                    return []
            proposals = self.inner.ask()
            if not proposals:
                self._inner_exhausted = True
                continue
            predictions = self.backend.predict(proposals)
            for prediction in predictions:
                digest = self.backend.evaluator.content_digest(prediction.config)
                if digest not in self._archive:
                    self._archive[digest] = prediction
            self._surrogate_generations += 1
            self.inner.tell(predictions)
            if self._surrogate_generations % self.settings.validate_every == 0:
                self._validation_due = True

    def tell(self, evaluated: List[EvaluatedConfig]) -> None:
        if self._pending == "bootstrap":
            self._pending = None
            self._oracle_generations += 1
            self._record_oracle(evaluated)
            self.inner.tell(evaluated)
            if (
                self._oracle_generations >= self.settings.bootstrap_generations
                and self.backend.ready
            ):
                self._phase = "surrogate"
            return
        if self._pending == "validate":
            self._pending = None
            self._validations += 1
            self._validation_due = False
            digests = self._record_oracle(evaluated)
            for prediction, actual, digest in zip(
                self._pending_predictions, evaluated, digests
            ):
                self._validated.add(digest)
                actual_objective = float(self.oracle_objective(actual))
                if math.isfinite(actual_objective):
                    self._best_validated_objective = min(
                        self._best_validated_objective, actual_objective
                    )
                    if math.isfinite(prediction.objective_value):
                        self._fidelity_pairs.append(
                            (prediction.objective_value, actual_objective)
                        )
                if actual.latency_ms > 0:
                    self._latency_errors.append(
                        abs(prediction.latency_ms - actual.latency_ms) / actual.latency_ms
                    )
                if actual.energy_mj > 0:
                    self._energy_errors.append(
                        abs(prediction.energy_mj - actual.energy_mj) / actual.energy_mj
                    )
            self._pending_predictions = []
            return
        raise ConfigurationError("tell() called without a pending ask() batch")

    # -- internals ---------------------------------------------------------------
    def _record_oracle(self, evaluated: Sequence[EvaluatedConfig]) -> List[str]:
        digests: List[str] = []
        for item in evaluated:
            digest = self.backend.evaluator.content_digest(item.config)
            digests.append(digest)
            self._oracle_digests.add(digest)
            self.backend.observe(digest, item)
            objective = float(self.oracle_objective(item))
            if math.isfinite(objective):
                self._best_oracle_objective = min(self._best_oracle_objective, objective)
        return digests

    def _validation_batch(self) -> List[SurrogatePrediction]:
        """Unvalidated members of the surrogate-incumbent front, capped."""
        candidates = [
            prediction
            for digest, prediction in self._archive.items()
            if digest not in self._validated and digest not in self._oracle_digests
        ]
        if not candidates:
            return []
        front = pareto_front(candidates, self.objectives)
        cap = self.settings.validation_cap
        if len(front) <= cap:
            return front
        # Greedy hypervolume selection: each pick is the front member adding
        # the largest predicted dominated volume to the already-picked set.
        # Validating a prefix of the front would confirm one end of the
        # trade-off curve and leave the oracle-confirmed front blind to the
        # rest, which costs exactly the hypervolume the surrogate found.
        # Inputs are seed-determined and ties resolve to the lowest archive
        # insertion index (strict ``>``), so the picks are identical whatever
        # the backend or cell scheduling.
        reference = _validation_reference(front, self.objectives)
        picked: List[SurrogatePrediction] = []
        remaining = list(range(len(front)))
        while len(picked) < cap and remaining:
            best_index = remaining[0]
            best_volume = -math.inf
            for index in remaining:
                volume = hypervolume(picked + [front[index]], reference, self.objectives)
                if volume > best_volume:
                    best_volume = volume
                    best_index = index
            picked.append(front[best_index])
            remaining.remove(best_index)
        return picked

    def report(self) -> SurrogateReport:
        """Fidelity and cost summary; every number is seed-determined."""
        if self._fidelity_pairs:
            predicted, actual = zip(*self._fidelity_pairs)
            rank_correlation = _spearman(predicted, actual)
        else:
            rank_correlation = 0.0
        if (
            math.isfinite(self._best_validated_objective)
            and math.isfinite(self._best_oracle_objective)
            and self._best_oracle_objective > 0
        ):
            front_regret = self._best_validated_objective / self._best_oracle_objective
        else:
            front_regret = 1.0
        return SurrogateReport(
            oracle_evaluations=len(self._oracle_digests),
            surrogate_evaluations=self.backend.surrogate_predictions,
            bootstrap_generations=self._oracle_generations,
            surrogate_generations=self._surrogate_generations,
            validations=self._validations,
            validated_points=len(self._validated),
            rank_correlation=float(rank_correlation),
            latency_mare=float(np.mean(self._latency_errors)) if self._latency_errors else 0.0,
            energy_mare=float(np.mean(self._energy_errors)) if self._energy_errors else 0.0,
            front_regret=float(front_regret),
            settings=self.settings,
        )
