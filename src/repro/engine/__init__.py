"""Pluggable search-engine subsystem.

The engine decomposes the paper's Fig. 5 loop into three orthogonal pieces:

* **strategies** (:mod:`repro.engine.strategies`, :mod:`repro.engine.nsga`)
  propose configurations via an ask/tell protocol — the seed's evolutionary
  loop, NSGA-II non-dominated sorting, and a random-search baseline,
* **backends** (:mod:`repro.engine.backends`) decide where uncached
  configurations are evaluated — in-process or across a worker pool rebuilt
  from a picklable :class:`~repro.engine.backends.EvaluatorSpec`,
* a **cache** (:mod:`repro.engine.cache`) keyed by configuration + evaluator
  content, with hit/miss telemetry and optional JSON-lines persistence.

:class:`~repro.engine.engine.SearchEngine` wires the three together and is
what :meth:`repro.core.framework.MapAndConquer.search` runs on.
"""

from .backends import EvaluationBackend, EvaluatorSpec, ProcessPoolBackend, SerialBackend
from .cache import CacheStats, EvaluationCache
from .engine import SearchEngine
from .nsga import NSGA2Strategy, crowding_distance, non_dominated_sort, objective_matrix
from .strategies import EvolutionaryStrategy, RandomStrategy, SearchStrategy
from .surrogate import (
    SurrogateAssistedStrategy,
    SurrogateEvaluationBackend,
    SurrogateObjective,
    SurrogatePrediction,
    SurrogateReport,
    SurrogateSettings,
)

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "EvaluationBackend",
    "EvaluatorSpec",
    "SerialBackend",
    "ProcessPoolBackend",
    "SearchStrategy",
    "EvolutionaryStrategy",
    "RandomStrategy",
    "NSGA2Strategy",
    "non_dominated_sort",
    "crowding_distance",
    "objective_matrix",
    "SearchEngine",
    "SurrogateSettings",
    "SurrogatePrediction",
    "SurrogateObjective",
    "SurrogateEvaluationBackend",
    "SurrogateAssistedStrategy",
    "SurrogateReport",
]
