"""NSGA-II style multi-objective strategy (non-dominated sorting + crowding).

The paper scalarises its three objectives into Eq. 16 and extracts a Pareto
set post-hoc; NSGA-II instead maintains Pareto pressure *during* the search
by ranking candidates with fast non-dominated sorting and breaking ties with
crowding distance (Deb et al., 2002).  Constraints are handled with Deb's
constrained-domination rule: every feasible candidate outranks every
infeasible one.

The building blocks (:func:`non_dominated_sort`, :func:`crowding_distance`)
are exported separately so they can be validated against the seed's
:func:`~repro.search.pareto.pareto_front` and reused by reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SearchError
from ..search.constraints import SearchConstraints
from ..search.evaluation import EvaluatedConfig
from ..search.objectives import as_objective_set
from ..search.operators import crossover, mutate
from ..search.space import MappingConfig, SearchSpace
from ..utils import as_rng
from .strategies import SearchStrategy, _check_common_budget, resolve_initial_population

__all__ = ["objective_matrix", "non_dominated_sort", "crowding_distance", "NSGA2Strategy"]


def objective_matrix(
    evaluated: Sequence[EvaluatedConfig], objectives=None
) -> np.ndarray:
    """Stack the objective set as rows of minimised values.

    The default set's columns are (latency, energy, -accuracy), matching the
    keys the seed's Pareto analysis minimises; a custom
    :class:`~repro.search.objectives.ObjectiveSet` adds or replaces columns.
    """
    return as_objective_set(objectives).matrix(evaluated)


def _dominates_row(first: np.ndarray, second: np.ndarray) -> bool:
    return bool(np.all(first <= second) and np.any(first < second))


def non_dominated_sort(values: np.ndarray) -> List[List[int]]:
    """Partition row indices of ``values`` into successive Pareto fronts.

    ``values`` holds one row per candidate, all objectives minimised.  The
    first front contains exactly the non-dominated rows; removing it, the
    second front is the non-dominated remainder, and so on.
    """
    count = len(values)
    dominated_by: List[List[int]] = [[] for _ in range(count)]
    domination_count = np.zeros(count, dtype=int)
    for i in range(count):
        for j in range(i + 1, count):
            if _dominates_row(values[i], values[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif _dominates_row(values[j], values[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(count) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        upcoming: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    upcoming.append(j)
        current = upcoming
    return fronts


def crowding_distance(values: np.ndarray) -> np.ndarray:
    """Crowding distance of each row of ``values`` within its front.

    Boundary candidates of every objective get infinite distance so they are
    always preferred; interior candidates get the normalised side length of
    the cuboid spanned by their neighbours.
    """
    count, num_objectives = values.shape
    distance = np.zeros(count)
    if count <= 2:
        return np.full(count, np.inf)
    for objective in range(num_objectives):
        column = values[:, objective]
        if not np.all(np.isfinite(column)):
            # Saturated serving objectives legitimately score inf; clamping
            # the non-finite entries to the finite range keeps every gap and
            # gap/spread below well defined (inf - inf or inf/inf would put
            # NaN into the survivor sort).  The clamped entries still sort to
            # the column's ends and collect infinite boundary distance.
            finite = column[np.isfinite(column)]
            if finite.size == 0:
                continue
            column = np.clip(column, finite.min(), finite.max())
        order = np.argsort(column, kind="stable")
        spread = column[order[-1]] - column[order[0]]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if spread <= 0:
            continue
        for position in range(1, count - 1):
            index = order[position]
            gap = column[order[position + 1]] - column[order[position - 1]]
            distance[index] += gap / spread
    return distance


class NSGA2Strategy(SearchStrategy):
    """NSGA-II over the joint mapping space, at the paper's budget shape.

    Every generation proposes ``population_size`` offspring bred from the
    current parents by binary tournament on (front rank, crowding distance),
    then keeps the best ``population_size`` of parents + offspring.  The
    total evaluation budget therefore matches the evolutionary strategy:
    ``generations x population_size`` proposals.
    """

    def __init__(
        self,
        space: SearchSpace,
        constraints: Optional[SearchConstraints] = None,
        population_size: int = 60,
        generations: int = 200,
        mutation_rate: float = 0.8,
        seed: "int | np.random.Generator | None" = 0,
        initial_population: Optional[Sequence[MappingConfig]] = None,
        objectives=None,
    ) -> None:
        _check_common_budget(population_size, generations)
        if not 0 <= mutation_rate <= 1:
            raise SearchError(f"mutation_rate must lie in [0, 1], got {mutation_rate}")
        self.space = space
        self.constraints = constraints if constraints is not None else SearchConstraints()
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.objectives = as_objective_set(objectives)
        self.initial_population = resolve_initial_population(
            initial_population, population_size
        )
        self._rng = as_rng(seed)
        self._generation = 0
        self._parents: List[EvaluatedConfig] = []
        # Selection-time (rank, crowding) of the surviving parents, reused by
        # the next _breed so the domination sort runs once per generation.
        self._parent_ranks = np.zeros(0, dtype=int)
        self._parent_crowding = np.zeros(0)

    # -- ask/tell ----------------------------------------------------------------
    def ask(self) -> List[MappingConfig]:
        if self._generation >= self.generations:
            return []
        if not self._parents:
            seeds = list(self.initial_population)
            remainder = self.population_size - len(seeds)
            fresh = self.space.population(remainder, self._rng) if remainder else []
            return seeds + fresh
        return self._breed()

    def tell(self, evaluated: List[EvaluatedConfig]) -> None:
        self._generation += 1
        combined = self._parents + list(evaluated)
        (
            self._parents,
            self._parent_ranks,
            self._parent_crowding,
        ) = self._select_survivors(combined, self.population_size)

    # -- internals ---------------------------------------------------------------
    def _is_feasible(self, item: EvaluatedConfig) -> bool:
        return self.constraints.is_feasible(item, platform=self.space.platform)

    def _rank(
        self, items: Sequence[EvaluatedConfig]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-item (front rank, crowding distance) with constrained domination.

        Feasible candidates are front-sorted among themselves; infeasible
        candidates are pushed behind every feasible front, ordered by their
        own non-dominated sorting so a barely infeasible region still keeps
        gradient.
        """
        ranks = np.zeros(len(items), dtype=int)
        crowding = np.zeros(len(items))
        feasible_idx = [i for i, item in enumerate(items) if self._is_feasible(item)]
        feasible_set = set(feasible_idx)
        infeasible_idx = [i for i in range(len(items)) if i not in feasible_set]
        offset = 0
        for group in (feasible_idx, infeasible_idx):
            if not group:
                continue
            values = objective_matrix([items[i] for i in group], self.objectives)
            fronts = non_dominated_sort(values)
            for front_rank, front in enumerate(fronts):
                front_values = values[front]
                front_crowding = crowding_distance(front_values)
                for local, member in enumerate(front):
                    ranks[group[member]] = offset + front_rank
                    crowding[group[member]] = front_crowding[local]
            offset += len(fronts)
        return ranks, crowding

    def _select_survivors(
        self, items: List[EvaluatedConfig], capacity: int
    ) -> Tuple[List[EvaluatedConfig], np.ndarray, np.ndarray]:
        """Best ``capacity`` of ``items`` plus their selection-time scores."""
        ranks, crowding = self._rank(items)
        # Sort by (rank asc, crowding desc); stable so earlier items win ties.
        order = sorted(
            range(len(items)), key=lambda i: (ranks[i], -crowding[i])
        )
        chosen = order[:capacity]
        return (
            [items[i] for i in chosen],
            ranks[chosen],
            crowding[chosen],
        )

    def _tournament(self, ranks: np.ndarray, crowding: np.ndarray) -> int:
        first = int(self._rng.integers(0, len(ranks)))
        second = int(self._rng.integers(0, len(ranks)))
        if (ranks[first], -crowding[first]) <= (ranks[second], -crowding[second]):
            return first
        return second

    def _breed(self) -> List[MappingConfig]:
        ranks, crowding = self._parent_ranks, self._parent_crowding
        offspring: List[MappingConfig] = []
        while len(offspring) < self.population_size:
            parent_a = self._parents[self._tournament(ranks, crowding)]
            parent_b = self._parents[self._tournament(ranks, crowding)]
            child = crossover(parent_a.config, parent_b.config, self.space, self._rng)
            if self._rng.random() < self.mutation_rate:
                child = mutate(child, self.space, self._rng)
            offspring.append(child)
        return offspring
