"""Content-keyed evaluation cache with optional JSON-lines persistence.

Every evaluation the engine performs flows through an
:class:`EvaluationCache`.  Entries are keyed by a stable content digest of
the configuration plus the identity of the evaluator that scored it (see
:meth:`repro.search.evaluation.ConfigEvaluator.content_digest`), so two
differently configured evaluators can safely share one cache, and re-running
a search with the same seed costs nothing.

When constructed with a ``path`` the cache appends one JSON line per stored
result and reloads existing lines on startup, making evaluation results
persistent across runs and shareable between processes.  Each line carries a
human-readable metric summary next to an opaque pickled payload, so cache
files double as a flat log of everything ever evaluated.

.. warning::
   The payload is a pickle: loading a cache file deserialises it with
   :func:`pickle.loads`, which can execute arbitrary code.  Only open cache
   files you wrote yourself or obtained from a source you trust, exactly as
   you would treat any other pickle.
"""

from __future__ import annotations

import base64
import json
import logging
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..search.evaluation import EvaluatedConfig

__all__ = ["CacheStats", "EvaluationCache"]

logger = logging.getLogger(__name__)

#: Format marker written into every persisted line; bump on layout changes.
_PERSIST_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`EvaluationCache`."""

    hits: int = 0
    misses: int = 0
    loaded: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` pair, for windowed rate computation."""
        return (self.hits, self.misses)

    def window_hit_rate(self, snapshot: Tuple[int, int]) -> float:
        """Hit rate since ``snapshot`` was taken."""
        hits = self.hits - snapshot[0]
        misses = self.misses - snapshot[1]
        total = hits + misses
        return hits / total if total else 0.0


class EvaluationCache:
    """In-memory (and optionally on-disk) store of evaluation results.

    Parameters
    ----------
    path:
        Optional JSON-lines file.  Existing lines are loaded eagerly; every
        :meth:`store` appends one line so independent runs accumulate into a
        shared result store.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._entries: Dict[str, EvaluatedConfig] = {}
        self.stats = CacheStats()
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    # -- lookup / store ----------------------------------------------------------
    def lookup(self, digest: str) -> Optional[EvaluatedConfig]:
        """Return the cached result for ``digest``, recording a hit or miss."""
        value = self._entries.get(digest)
        if value is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def get_many(self, digests: Sequence[str]) -> Dict[str, EvaluatedConfig]:
        """Resolve a batch of digests in one pass, with bulk stat updates.

        Returns the subset of ``digests`` present in the cache.  Counts one
        hit per found digest and one miss per absent digest (duplicates in
        ``digests`` each count), so the statistics match a sequence of
        individual :meth:`lookup` calls.
        """
        found: Dict[str, EvaluatedConfig] = {}
        misses = 0
        entries = self._entries
        for digest in digests:
            value = entries.get(digest)
            if value is None:
                misses += 1
            else:
                found[digest] = value
        self.stats.hits += len(digests) - misses
        self.stats.misses += misses
        return found

    def peek(self, digest: str) -> Optional[EvaluatedConfig]:
        """Like :meth:`lookup` but without touching the statistics."""
        return self._entries.get(digest)

    def items(self) -> Iterator[Tuple[str, EvaluatedConfig]]:
        """Iterate over ``(digest, result)`` pairs (no stat updates)."""
        return iter(self._entries.items())

    def store(self, digest: str, value: EvaluatedConfig) -> None:
        """Insert a freshly evaluated result and persist it if configured."""
        if not isinstance(value, EvaluatedConfig):
            raise ConfigurationError(
                f"cache values must be EvaluatedConfig, got {type(value).__name__}"
            )
        if digest in self._entries:
            return
        self._entries[digest] = value
        if self.path is not None:
            self._append(digest, value)

    def store_many(self, pairs: Iterable[Tuple[str, EvaluatedConfig]]) -> None:
        """Insert a batch of results, skipping digests already present.

        Equivalent to calling :meth:`store` per pair, but persisted entries
        are flushed through a single file append.
        """
        fresh: list = []
        for digest, value in pairs:
            if not isinstance(value, EvaluatedConfig):
                raise ConfigurationError(
                    f"cache values must be EvaluatedConfig, got {type(value).__name__}"
                )
            if digest in self._entries:
                continue
            self._entries[digest] = value
            fresh.append((digest, value))
        if self.path is not None and fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as stream:
                for digest, value in fresh:
                    stream.write(
                        json.dumps(self._record(digest, value), ensure_ascii=False) + "\n"
                    )

    # -- persistence -------------------------------------------------------------
    @staticmethod
    def _record(digest: str, value: EvaluatedConfig) -> Dict[str, object]:
        return {
            "version": _PERSIST_VERSION,
            "key": digest,
            "metrics": {
                "accuracy": value.accuracy,
                "latency_ms": value.latency_ms,
                "energy_mj": value.energy_mj,
                "reuse_fraction": value.reuse_fraction,
            },
            "mapping": value.config.describe(),
            "payload": base64.b64encode(pickle.dumps(value)).decode("ascii"),
        }

    def _append(self, digest: str, value: EvaluatedConfig) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # ensure_ascii=False keeps non-ASCII platform/unit names readable in
        # the log; the explicit utf-8 handle makes that safe on any locale.
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(self._record(digest, value), ensure_ascii=False) + "\n")

    def _load(self) -> None:
        """Reload persisted entries, surviving a mid-write crash.

        A process killed while :meth:`_append` is flushing (e.g. a campaign
        interrupted between checkpoints) leaves a truncated trailing line;
        foreign tools may leave other malformed lines.  Neither aborts the
        load — every malformed line is skipped and the recovery is logged so
        silent data loss is visible in the run's logs.
        """
        skipped = 0
        with self.path.open("r", encoding="utf-8") as stream:
            for line in stream:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if record.get("version") != _PERSIST_VERSION:
                        skipped += 1
                        continue
                    digest = record["key"]
                    value = pickle.loads(base64.b64decode(record["payload"]))
                    if not isinstance(value, EvaluatedConfig):
                        skipped += 1
                        continue
                except Exception:  # noqa: BLE001 - tolerate truncated/foreign lines
                    skipped += 1
                    continue
                self._entries[digest] = value
                self.stats.loaded += 1
        if skipped:
            logger.warning(
                "evaluation cache %s: recovered %d entries, skipped %d malformed "
                "or foreign lines (expected after an interrupted write)",
                self.path,
                self.stats.loaded,
                skipped,
            )
