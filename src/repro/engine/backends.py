"""Evaluation backends: where a generation's configurations actually run.

The search engine hands every batch of *uncached* configurations to an
:class:`EvaluationBackend`.  Two implementations are provided:

* :class:`SerialBackend` evaluates in-process, exactly like the seed's loop
  did — zero overhead, bit-for-bit identical results.
* :class:`ProcessPoolBackend` fans a batch out over worker processes.  Each
  worker rebuilds the evaluation pipeline once from a picklable
  :class:`EvaluatorSpec` (networks, platforms, rankings and cost models are
  all plain dataclasses), then streams configurations through it.  With a
  deterministic pipeline — every search configuration in this library — a
  parallel run returns the same numbers as a serial one; results are merged
  back into the engine's shared cache by the caller.

  A *stateful* cost model (e.g. :class:`~repro.perf.layer_cost.NoisyCostModel`,
  whose noise RNG advances per call) breaks that guarantee under any
  evaluation-order change, parallel or serial: each worker clones the
  construction-time RNG state and chunk scheduling varies run to run.  Such
  models exist for surrogate *training-data generation*; keep them out of
  search loops, or accept order-dependent numbers.

Backends only ever see configurations the cache could not answer, so the
parallel speedup applies precisely to the hot path the paper's 60 x 200
budget spends its time in.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

import multiprocessing

from ..dynamics.accuracy import AccuracyModel
from ..errors import ConfigurationError
from ..nn.channels import ChannelRanking
from ..nn.graph import NetworkGraph
from ..perf.layer_cost import CostModel
from ..search.evaluation import ConfigEvaluator, EvaluatedConfig
from ..search.space import MappingConfig
from ..soc.platform import Platform

__all__ = [
    "EvaluatorSpec",
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
]


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything needed to rebuild a :class:`ConfigEvaluator` elsewhere.

    The spec is a plain picklable value object: worker processes receive it
    once (as pool-initializer argument), build their own evaluator from it,
    and amortise that cost over every configuration they score.
    """

    network: NetworkGraph
    platform: Platform
    cost_model: Optional[CostModel]
    accuracy_model: AccuracyModel
    ranking: ChannelRanking
    reorder_channels: bool
    validation_samples: int
    seed: int

    @classmethod
    def from_evaluator(cls, evaluator: ConfigEvaluator) -> "EvaluatorSpec":
        """Capture the identity of an existing evaluator."""
        return cls(
            network=evaluator.network,
            platform=evaluator.platform,
            cost_model=evaluator.cost_model,
            accuracy_model=evaluator.accuracy_model,
            ranking=evaluator.ranking,
            reorder_channels=evaluator.reorder_channels,
            validation_samples=evaluator.validation_samples,
            seed=evaluator.seed,
        )

    def build(self) -> ConfigEvaluator:
        """Instantiate a fresh evaluator equivalent to the captured one."""
        return ConfigEvaluator(
            network=self.network,
            platform=self.platform,
            cost_model=self.cost_model,
            accuracy_model=self.accuracy_model,
            ranking=self.ranking,
            reorder_channels=self.reorder_channels,
            validation_samples=self.validation_samples,
            seed=self.seed,
        )


class EvaluationBackend:
    """Minimal interface the engine drives: evaluate a batch, then clean up."""

    def evaluate(self, configs: Sequence[MappingConfig]) -> List[EvaluatedConfig]:
        """Evaluate ``configs`` and return results in the same order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (worker pools); idempotent."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(EvaluationBackend):
    """In-process evaluation, identical to the seed's behaviour."""

    def __init__(self, evaluator: ConfigEvaluator) -> None:
        self.evaluator = evaluator

    def evaluate(self, configs: Sequence[MappingConfig]) -> List[EvaluatedConfig]:
        return [self.evaluator.evaluate(config) for config in configs]


# Per-worker evaluator, installed by the pool initializer.  A module-level
# global is the only channel available to ``ProcessPoolExecutor`` workers.
_WORKER_EVALUATOR: Optional[ConfigEvaluator] = None


def _init_worker(spec: EvaluatorSpec) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = spec.build()


def _evaluate_in_worker(config: MappingConfig) -> EvaluatedConfig:
    if _WORKER_EVALUATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("worker pool was not initialised with an EvaluatorSpec")
    return _WORKER_EVALUATOR.evaluate(config)


class ProcessPoolBackend(EvaluationBackend):
    """Evaluate batches in parallel worker processes.

    Parameters
    ----------
    spec:
        Picklable evaluator description, or an existing
        :class:`ConfigEvaluator` to capture one from.
    n_workers:
        Number of worker processes (>= 1).
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"`` /
        ``"spawn"`` / ``"forkserver"``); ``None`` uses the platform default.
    chunksize:
        Configurations per task message; ``None`` picks a balanced default.

    The pool is created lazily on first use and kept alive across batches so
    the per-generation cost is only task dispatch, not process startup.
    """

    def __init__(
        self,
        spec,
        n_workers: int = 2,
        start_method: Optional[str] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        if isinstance(spec, ConfigEvaluator):
            spec = EvaluatorSpec.from_evaluator(spec)
        if not isinstance(spec, EvaluatorSpec):
            raise ConfigurationError(
                f"spec must be an EvaluatorSpec or ConfigEvaluator, got {type(spec).__name__}"
            )
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self.spec = spec
        self.n_workers = int(n_workers)
        self.start_method = start_method
        self.chunksize = chunksize
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method is not None
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.spec,),
            )
        return self._executor

    def evaluate(self, configs: Sequence[MappingConfig]) -> List[EvaluatedConfig]:
        if not configs:
            return []
        executor = self._ensure_executor()
        if self.chunksize is not None:
            chunksize = self.chunksize
        else:
            # Two waves per worker balances load without flooding the queue.
            chunksize = max(1, len(configs) // (2 * self.n_workers))
        return list(executor.map(_evaluate_in_worker, configs, chunksize=chunksize))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
