"""The search engine: one evaluation loop for every strategy and backend.

The seed's ``EvolutionarySearch.run`` owned sampling, evaluation, caching and
bookkeeping at once.  :class:`SearchEngine` inverts that: a
:class:`~repro.engine.strategies.SearchStrategy` proposes configurations, the
engine resolves them through its content-keyed
:class:`~repro.engine.cache.EvaluationCache`, sends only the uncached
remainder to an :class:`~repro.engine.backends.EvaluationBackend` (serial or
process pool), merges the results back, and records per-generation telemetry
(cache hit-rate, wall-clock) alongside the paper's convergence statistics.

The final :class:`~repro.search.evolutionary.SearchResult` is assembled
exactly as the seed did — history deduplicated (now by content key rather
than object identity), feasibility-filtered pool, Pareto front, best by the
scalar objective — so every downstream consumer keeps working unchanged.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..search.constraints import SearchConstraints
from ..search.evaluation import ConfigEvaluator, EvaluatedConfig
from ..search.evolutionary import GenerationStats, SearchResult
from ..search.objectives import as_objective_set, nan_guarded, paper_objective
from ..search.pareto import pareto_front
from ..search.space import MappingConfig
from .backends import EvaluationBackend, SerialBackend
from .cache import EvaluationCache
from .strategies import SearchStrategy

__all__ = ["SearchEngine"]


class SearchEngine:
    """Drive a strategy's ask/tell loop through a cache and a backend.

    Parameters
    ----------
    evaluator:
        The evaluation pipeline; also provides the content keys the cache and
        the history deduplication use.
    backend:
        Where uncached configurations are evaluated; defaults to a
        :class:`SerialBackend` over ``evaluator``.
    cache:
        Shared result store; defaults to a fresh in-memory cache.  Pass a
        persistent cache to reuse results across runs.
    constraints, objective:
        Feasibility gate and scalar objective used for the per-generation
        statistics and the final result assembly (strategies receive their
        own copies, typically the same objects).
    objectives:
        :class:`~repro.search.objectives.ObjectiveSet` the final Pareto front
        is computed over.  ``None`` adopts the strategy's own set when it
        declares one (NSGA-II), otherwise the default
        (latency, energy, accuracy) axes.
    platform:
        Platform the constraints are checked against; defaults to the
        evaluator's platform.
    """

    def __init__(
        self,
        evaluator: ConfigEvaluator,
        backend: Optional[EvaluationBackend] = None,
        cache: Optional[EvaluationCache] = None,
        constraints: Optional[SearchConstraints] = None,
        objective: Callable[[EvaluatedConfig], float] = paper_objective,
        platform=None,
        objectives=None,
    ) -> None:
        self.evaluator = evaluator
        self.backend = backend if backend is not None else SerialBackend(evaluator)
        self.cache = cache if cache is not None else EvaluationCache()
        self.constraints = constraints if constraints is not None else SearchConstraints()
        self.objective = objective
        self.objectives = None if objectives is None else as_objective_set(objectives)
        self.platform = platform if platform is not None else evaluator.platform

    # -- evaluation --------------------------------------------------------------
    def evaluate_batch(self, configs: Sequence[MappingConfig]) -> List[EvaluatedConfig]:
        """Resolve a batch through the cache, evaluating only the remainder.

        Duplicate configurations inside one batch are evaluated once; results
        come back in the order of ``configs``.
        """
        return self._evaluate_with_digests(configs)[0]

    def _evaluate_with_digests(
        self, configs: Sequence[MappingConfig]
    ) -> Tuple[List[EvaluatedConfig], List[str]]:
        """:meth:`evaluate_batch` plus each result's content digest.

        A lookup is a hit whenever it avoids an evaluation: found in the
        cache, or a duplicate of an earlier config in the same batch
        (resolved or still pending).  Each distinct uncached configuration
        counts as exactly one miss.
        """
        digests = [self.evaluator.content_digest(config) for config in configs]
        # One cache pass for the whole generation: deduplicate the batch
        # (each duplicate is a hit), resolve the distinct digests through
        # get_many, and send only the misses to the backend.
        unique_configs: List[MappingConfig] = []
        unique_digests: List[str] = []
        seen = set()
        for config, digest in zip(configs, digests):
            if digest in seen:
                continue
            seen.add(digest)
            unique_configs.append(config)
            unique_digests.append(digest)
        self.cache.stats.hits += len(digests) - len(unique_digests)
        resolved: Dict[str, EvaluatedConfig] = self.cache.get_many(unique_digests)
        pending = [
            (config, digest)
            for config, digest in zip(unique_configs, unique_digests)
            if digest not in resolved
        ]
        if pending:
            fresh = self.backend.evaluate([config for config, _ in pending])
            fresh_pairs = [(digest, item) for (_, digest), item in zip(pending, fresh)]
            self.cache.store_many(fresh_pairs)
            resolved.update(fresh_pairs)
        return [resolved[digest] for digest in digests], digests

    # -- the loop ----------------------------------------------------------------
    def run(self, strategy: SearchStrategy) -> SearchResult:
        """Run ``strategy`` to exhaustion and assemble the search result."""
        if self.objectives is None:
            # Adopt the strategy's declared set so a custom NSGA-II run gets
            # its final front over the same axes it ranked on.
            self.objectives = getattr(strategy, "objectives", None)
        history: List[EvaluatedConfig] = []
        seen_digests = set()
        stats: List[GenerationStats] = []
        generation = 0
        while True:
            population = strategy.ask()
            if not population:
                break
            window = self.cache.stats.snapshot()
            started = time.perf_counter()
            evaluated, digests = self._evaluate_with_digests(population)
            wall_clock_s = time.perf_counter() - started
            hit_rate = self.cache.stats.window_hit_rate(window)
            new_configs = 0
            for item, digest in zip(evaluated, digests):
                if digest not in seen_digests:
                    seen_digests.add(digest)
                    history.append(item)
                    new_configs += 1
            feasible = [
                item
                for item in evaluated
                if self.constraints.is_feasible(item, platform=self.platform)
            ]
            ranked_pool = feasible if feasible else evaluated
            best = min(ranked_pool, key=nan_guarded(self.objective))
            stats.append(
                GenerationStats(
                    generation=generation,
                    evaluated=len(evaluated),
                    feasible=len(feasible),
                    best_objective=float(self.objective(best)),
                    best_latency_ms=best.latency_ms,
                    best_energy_mj=best.energy_mj,
                    best_accuracy=best.accuracy,
                    cache_hit_rate=hit_rate,
                    wall_clock_s=wall_clock_s,
                    new_configs=new_configs,
                )
            )
            strategy.tell(evaluated)
            generation += 1
        if not history:
            raise SearchError("strategy proposed no configurations to evaluate")
        return self._assemble(history, stats)

    # -- result assembly ---------------------------------------------------------
    def _assemble(
        self, history: List[EvaluatedConfig], stats: List[GenerationStats]
    ) -> SearchResult:
        all_feasible: Tuple[EvaluatedConfig, ...] = tuple(
            item
            for item in history
            if self.constraints.is_feasible(item, platform=self.platform)
        )
        candidate_pool = all_feasible if all_feasible else tuple(history)
        front = tuple(pareto_front(list(candidate_pool), self.objectives))
        best_overall = min(candidate_pool, key=nan_guarded(self.objective))
        return SearchResult(
            history=tuple(history),
            feasible=all_feasible,
            pareto=front,
            best=best_overall,
            generations=tuple(stats),
        )
