"""Search strategies behind a small ask/tell protocol.

A :class:`SearchStrategy` proposes batches of configurations (``ask``) and
learns from their evaluations (``tell``); it never evaluates anything itself.
That inversion — the engine owns evaluation, the strategy owns variation and
selection — is what lets one evolutionary loop run unchanged on a serial
backend, a process pool, or a persistent cache.

Strategies provided here:

* :class:`EvolutionaryStrategy` — the paper's elite-selection loop (Fig. 5),
  ported verbatim from the seed's ``EvolutionarySearch``: identical RNG
  consumption, identical populations, identical results for a given seed.
* :class:`RandomStrategy` — uniform random sampling at the same budget, the
  sanity-check baseline every optimiser must beat.

The NSGA-II strategy lives in :mod:`repro.engine.nsga`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SearchError
from ..search.constraints import SearchConstraints
from ..search.evaluation import EvaluatedConfig
from ..search.objectives import nan_guarded, paper_objective
from ..search.operators import crossover, mutate
from ..search.space import MappingConfig, SearchSpace
from ..utils import as_rng

__all__ = ["SearchStrategy", "EvolutionaryStrategy", "RandomStrategy"]


def resolve_initial_population(
    initial_population: Optional[Sequence[MappingConfig]],
    population_size: int,
) -> Tuple[MappingConfig, ...]:
    """Validate a warm-start seed population against a strategy's budget.

    Returns the seeds as a tuple (empty for ``None``).  Seeds beyond
    ``population_size`` are rejected rather than silently dropped: the caller
    chose them deliberately, so losing some must be its decision (the
    campaign runner caps donor fronts before handing them over).
    """
    if initial_population is None:
        return ()
    seeds = tuple(initial_population)
    for item in seeds:
        if not isinstance(item, MappingConfig):
            raise SearchError(
                f"initial_population must contain MappingConfig instances, "
                f"got {type(item).__name__}"
            )
    if len(seeds) > population_size:
        raise SearchError(
            f"initial_population has {len(seeds)} seeds but the population "
            f"holds only {population_size}; trim the seeds explicitly"
        )
    return seeds


class SearchStrategy:
    """Ask/tell interface every optimiser implements.

    The engine alternates ``ask`` / ``tell`` until ``ask`` returns an empty
    batch, then assembles the :class:`~repro.search.evolutionary.SearchResult`
    from everything evaluated along the way.

    A strategy that optimises a specific
    :class:`~repro.search.objectives.ObjectiveSet` (NSGA-II does) exposes it
    as ``objectives`` so the engine can assemble the final Pareto front over
    the same axes the strategy ranked on; scalar strategies leave it ``None``
    and the engine falls back to the default set.
    """

    objectives = None

    def ask(self) -> List[MappingConfig]:
        """Propose the next batch of configurations (empty when done)."""
        raise NotImplementedError

    def tell(self, evaluated: List[EvaluatedConfig]) -> None:
        """Ingest the evaluations of the batch returned by the last ``ask``."""
        raise NotImplementedError


def _check_common_budget(population_size: int, generations: int) -> None:
    if population_size < 2:
        raise SearchError(f"population_size must be >= 2, got {population_size}")
    if generations < 1:
        raise SearchError(f"generations must be >= 1, got {generations}")


class EvolutionaryStrategy(SearchStrategy):
    """Elite-selection evolutionary loop of Fig. 5 as an ask/tell strategy.

    This is the seed's ``EvolutionarySearch`` loop with evaluation carved
    out: sampling, ranking, elitism, crossover, mutation and fresh-sample
    top-up are unchanged and consume the RNG in the same order, so a given
    seed reproduces the seed repository's populations bit for bit.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Callable[[EvaluatedConfig], float] = paper_objective,
        constraints: Optional[SearchConstraints] = None,
        population_size: int = 60,
        generations: int = 200,
        elite_fraction: float = 0.25,
        mutation_rate: float = 0.8,
        fresh_fraction: float = 0.10,
        seed: "int | np.random.Generator | None" = 0,
        initial_population: Optional[Sequence[MappingConfig]] = None,
    ) -> None:
        _check_common_budget(population_size, generations)
        if not 0 < elite_fraction <= 1:
            raise SearchError(f"elite_fraction must lie in (0, 1], got {elite_fraction}")
        if not 0 <= mutation_rate <= 1:
            raise SearchError(f"mutation_rate must lie in [0, 1], got {mutation_rate}")
        if not 0 <= fresh_fraction < 1:
            raise SearchError(f"fresh_fraction must lie in [0, 1), got {fresh_fraction}")
        self.space = space
        self.objective = objective
        self.constraints = constraints if constraints is not None else SearchConstraints()
        self.population_size = population_size
        self.generations = generations
        self.elite_fraction = elite_fraction
        self.mutation_rate = mutation_rate
        self.fresh_fraction = fresh_fraction
        self.initial_population = resolve_initial_population(
            initial_population, population_size
        )
        self._rng = as_rng(seed)
        self._generation = 0
        self._population: Optional[List[MappingConfig]] = None

    def ask(self) -> List[MappingConfig]:
        if self._generation >= self.generations:
            return []
        if self._population is None:
            # Warm start: seeds lead, random samples fill the remainder.  An
            # empty seed tuple consumes the RNG exactly like the seed repo's
            # cold start, so existing runs stay bit-for-bit reproducible.
            seeds = list(self.initial_population)
            remainder = self.population_size - len(seeds)
            fresh = self.space.population(remainder, self._rng) if remainder else []
            self._population = seeds + fresh
        return list(self._population)

    def tell(self, evaluated: List[EvaluatedConfig]) -> None:
        feasible = [
            item
            for item in evaluated
            if self.constraints.is_feasible(item, platform=self.space.platform)
        ]
        ranked = sorted(
            feasible if feasible else list(evaluated), key=nan_guarded(self.objective)
        )
        self._generation += 1
        if self._generation < self.generations:
            self._population = self._next_population(ranked)

    # -- internals ---------------------------------------------------------------
    def _next_population(self, ranked: List[EvaluatedConfig]) -> List[MappingConfig]:
        elite_count = max(1, int(round(self.elite_fraction * len(ranked))))
        elites = [item.config for item in ranked[:elite_count]]
        fresh_count = int(round(self.fresh_fraction * self.population_size))
        population: List[MappingConfig] = list(elites)
        while len(population) < self.population_size - fresh_count:
            parent_a = elites[int(self._rng.integers(0, len(elites)))]
            parent_b = elites[int(self._rng.integers(0, len(elites)))]
            child = crossover(parent_a, parent_b, self.space, self._rng)
            if self._rng.random() < self.mutation_rate:
                child = mutate(child, self.space, self._rng)
            population.append(child)
        while len(population) < self.population_size:
            population.append(self.space.sample(self._rng))
        return population


class RandomStrategy(SearchStrategy):
    """Uniform random search at the same ``generations x population`` budget."""

    def __init__(
        self,
        space: SearchSpace,
        population_size: int = 60,
        generations: int = 200,
        seed: "int | np.random.Generator | None" = 0,
        initial_population: Optional[Sequence[MappingConfig]] = None,
    ) -> None:
        _check_common_budget(population_size, generations)
        self.space = space
        self.population_size = population_size
        self.generations = generations
        self.initial_population = resolve_initial_population(
            initial_population, population_size
        )
        self._rng = as_rng(seed)
        self._generation = 0

    def ask(self) -> List[MappingConfig]:
        if self._generation >= self.generations:
            return []
        if self._generation == 0 and self.initial_population:
            seeds = list(self.initial_population)
            remainder = self.population_size - len(seeds)
            return seeds + (self.space.population(remainder, self._rng) if remainder else [])
        return self.space.population(self.population_size, self._rng)

    def tell(self, evaluated: List[EvaluatedConfig]) -> None:
        self._generation += 1
